package service

// Follower: the client half of WAL shipping. One Follower replicates one
// graph from a leader previewd into the local registry: it bootstraps
// from the leader's checkpoint route (or resumes from its own local
// checkpoint + WAL), then tails the leader's wal route and feeds every
// shipped record through dynamic.Live.ApplyShipped — the exact
// ApplyBatch/epoch-publication machinery local writes use, including the
// follower's own durability hook, so a follower is durable in its own
// right and a restart resumes from local state instead of re-shipping
// history.
//
// Failure handling is two-tier. Transport errors and damaged streams
// (ErrCorrupt from the frame decoder) drop the connection and re-request
// from the last applied epoch — nothing corrupt is ever applied, because
// a record is applied only after its checksum verified. Divergence — the
// leader says 409, or a shipped record fails to apply — is fatal: the
// nodes disagree about history and re-requesting cannot reconcile them,
// so the loop stops and reports through the status endpoint while reads
// keep serving the last good epoch.

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"path/filepath"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"github.com/uta-db/previewtables/internal/dynamic"
	"github.com/uta-db/previewtables/internal/graph"
	"github.com/uta-db/previewtables/internal/score"
	"github.com/uta-db/previewtables/internal/storage"
)

// FollowerOptions configures replication from one leader.
type FollowerOptions struct {
	// Leader is the leader previewd's base URL (e.g. http://leader:8080).
	Leader string
	// Client issues the HTTP requests; it must not impose an overall
	// request timeout shorter than Wait (long polls are held open that
	// long on purpose). Nil means a dedicated timeout-free client.
	Client *http.Client
	// Walk configures the follower's score refreshes; use the same
	// options as the leader for byte-identical walk scores.
	Walk score.WalkOptions
	// CheckpointDir and WALRoot make the follower durable: the bootstrap
	// snapshot is committed as a durable checkpoint and every shipped
	// batch is logged to WALRoot/<graph> before its epoch publishes, so a
	// restart resumes locally. Set both or neither — a local WAL without
	// a checkpoint has no epoch base to recover against.
	CheckpointDir string
	WALRoot       string
	// Wait is the long-poll duration requested from the leader
	// (0 = DefaultReplicationWait).
	Wait time.Duration
	// Backoff is the pause after a failed poll before re-syncing
	// (0 = 250ms).
	Backoff time.Duration
	// OnApply, when set, observes every applied epoch in order — test
	// instrumentation for the contiguity property.
	OnApply func(epoch uint64)
}

func (o *FollowerOptions) durable() bool { return o.WALRoot != "" }

func (o *FollowerOptions) wait() time.Duration {
	if o.Wait > 0 {
		return o.Wait
	}
	return DefaultReplicationWait
}

func (o *FollowerOptions) backoff() time.Duration {
	if o.Backoff > 0 {
		return o.Backoff
	}
	return 250 * time.Millisecond
}

func (o *FollowerOptions) client() *http.Client {
	if o.Client != nil {
		return o.Client
	}
	return &http.Client{}
}

// errDiverged marks failures re-requesting cannot fix; the loop stops.
var errDiverged = errors.New("service: follower diverged from its leader")

// Follower replicates one graph; obtain one with StartFollower.
type Follower struct {
	reg  *Registry
	name string
	opts FollowerOptions

	gr *Graph
	// live is written by boot and by the replication goroutine's
	// rebootstrap, and read by Applied() from arbitrary goroutines —
	// hence atomic.
	live atomic.Pointer[dynamic.Live]
	wal  *storage.WAL          // nil when volatile
	ckpt *storage.Checkpointer // shared with previewd's checkpoint loop; nil when volatile

	cancel context.CancelFunc
	done   chan struct{}

	mu sync.Mutex
	st FollowStatus
}

// StartFollower bootstraps graph name from the leader (or resumes from
// local durable state), registers it in reg as a read replica, and
// starts the replication loop. The registry is marked as following the
// leader, so its write endpoints answer 503.
func StartFollower(reg *Registry, name string, opts FollowerOptions) (*Follower, error) {
	return startFollower(reg, name, opts, true)
}

// startFollower is StartFollower with the registry-wide leader mark
// optional: an Adopter replicates ONE graph onto a node that leads its
// others, so it must not 503 the whole registry — the adopted graph's
// own FollowState is what gates its writes (see requireWritable).
func startFollower(reg *Registry, name string, opts FollowerOptions, markLeader bool) (*Follower, error) {
	if opts.Leader == "" {
		return nil, errors.New("service: follower needs a leader URL")
	}
	opts.Leader = strings.TrimRight(opts.Leader, "/")
	if (opts.CheckpointDir == "") != (opts.WALRoot == "") {
		return nil, errors.New("service: follower durability needs CheckpointDir and WALRoot together")
	}
	f := &Follower{reg: reg, name: name, opts: opts}
	if err := f.boot(context.Background()); err != nil {
		return nil, fmt.Errorf("service: following %q from %s: %w", name, opts.Leader, err)
	}
	if markLeader {
		reg.SetLeader(opts.Leader)
	}
	ctx, cancel := context.WithCancel(context.Background())
	f.cancel, f.done = cancel, make(chan struct{})
	go f.run(ctx)
	return f, nil
}

// FollowAll discovers the leader's replicated graphs and starts a
// follower for each, skipping graphs the leader cannot ship (static or
// volatile ones). previewd -follow uses it at startup.
func FollowAll(reg *Registry, opts FollowerOptions) ([]*Follower, error) {
	leader := strings.TrimRight(opts.Leader, "/")
	var listing struct {
		Graphs []struct {
			Name string `json:"name"`
		} `json:"graphs"`
	}
	resp, err := opts.client().Get(leader + "/v1/graphs")
	if err != nil {
		return nil, fmt.Errorf("service: listing %s's graphs: %w", leader, err)
	}
	err = decodeJSONBody(resp, &listing)
	if err != nil {
		return nil, fmt.Errorf("service: listing %s's graphs: %w", leader, err)
	}
	var fs []*Follower
	for _, g := range listing.Graphs {
		st, err := opts.client().Get(leader + "/v1/replication/" + url.PathEscape(g.Name) + "/status")
		if err != nil {
			return fs, err
		}
		io.Copy(io.Discard, st.Body)
		st.Body.Close()
		if st.StatusCode == http.StatusNotFound {
			continue // not replicated; nothing to follow
		}
		f, err := StartFollower(reg, g.Name, opts)
		if err != nil {
			return fs, err
		}
		fs = append(fs, f)
	}
	return fs, nil
}

// Stop halts the replication loop and closes the local WAL. Reads keep
// serving the last applied epoch until the process exits.
func (f *Follower) Stop() {
	f.cancel()
	<-f.done
	if f.wal != nil {
		f.wal.Close()
	}
}

// Promote turns a durable follower into the leader for its graph: the
// replication loop stops (nothing shipped can land after this returns),
// the follow status clears so the replication status doc reports
// "leader", and the registry's write endpoints re-open. The local WAL
// stays open — it was already logging every shipped batch before its
// epoch published, so the first locally accepted write appends to it at
// the next epoch exactly as it would have on the old leader, and the
// node can ship its own WAL to the surviving followers.
//
// Safety rests on two invariants the replication layer already
// enforces: a record is fsynced before its epoch publishes (so this
// node holds only epochs the dead leader durably published), and every
// applied epoch is its predecessor + 1 (so the held prefix is
// contiguous — no phantom or gapped epochs). A volatile follower has no
// WAL to lead from and refuses.
//
// Promotion itself does not depose the old leader — the fencing epoch
// does: the fleet router carries the shard's bumped fence on the
// promote request, the server installs it before calling this (see
// handlePromote), and from then on the old leader's persisted fence no
// longer matches any stamp the router issues, so a revived old leader
// answers 409 to every write and must rejoin as a fresh follower.
func (f *Follower) Promote() error {
	if err := f.promoteGraph(); err != nil {
		return err
	}
	f.reg.SetLeader("")
	return nil
}

// promoteGraph is the graph-scoped half of Promote: stop the
// replication loop and clear this graph's follow status, leaving the
// registry-wide leader mark alone. Adopter.Promote uses it to cut one
// migrated graph over on a node that was never a whole-registry
// follower.
func (f *Follower) promoteGraph() error {
	if f.wal == nil {
		return errors.New("service: cannot promote a volatile follower; it has no WAL to lead from")
	}
	f.cancel()
	<-f.done
	f.gr.follow.Store(nil)
	return nil
}

// Name returns the replicated graph's name.
func (f *Follower) Name() string { return f.name }

// WAL returns the follower's local write-ahead log, or nil when the
// follower is volatile. previewd's checkpoint loop uses it to bound the
// local log exactly as on a leader.
func (f *Follower) WAL() *storage.WAL { return f.wal }

// Checkpointer returns the follower's durable checkpointer, or nil when
// the follower is volatile. Periodic checkpoint loops must use this
// instance rather than constructing their own: a Checkpointer serializes
// its saves internally, and two independent instances over the same
// directory could delete each other's snapshots out from under the
// current-manifest.
func (f *Follower) Checkpointer() *storage.Checkpointer { return f.ckpt }

// Applied returns the last shipped epoch applied and published.
func (f *Follower) Applied() uint64 { return f.live.Load().Snapshot().Epoch }

// Status returns a copy of the replication-loop status.
func (f *Follower) Status() FollowStatus {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.st
}

// WaitCaughtUp blocks until the follower has applied at least epoch, the
// timeout passes, or the loop fails fatally.
func (f *Follower) WaitCaughtUp(epoch uint64, timeout time.Duration) error {
	deadline := time.Now().Add(timeout)
	for {
		if f.Applied() >= epoch {
			return nil
		}
		select {
		case <-f.done:
			return fmt.Errorf("service: follower %q stopped at epoch %d: %s", f.name, f.Applied(), f.Status().Err)
		default:
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("service: follower %q at epoch %d, want %d after %v (status %+v)",
				f.name, f.Applied(), epoch, timeout, f.Status())
		}
		time.Sleep(time.Millisecond)
	}
}

// boot builds the initial facade — from local durable state when it
// exists, else from the leader's checkpoint route — and registers it.
func (f *Follower) boot(ctx context.Context) error {
	var (
		base      *graph.EntityGraph
		baseEpoch uint64
	)
	if f.opts.durable() {
		g, e, ok, err := storage.LoadLatestCheckpoint(f.opts.CheckpointDir, f.name)
		if err != nil {
			return err
		}
		if ok {
			base, baseEpoch = g, e
		}
	}
	if base == nil {
		g, e, err := f.fetchBootstrap(ctx)
		if err != nil {
			return err
		}
		base, baseEpoch = g, e
		f.bumpBootstraps()
		if f.opts.durable() {
			// Commit the bootstrap before serving it: a restart must know
			// which epoch the local WAL tail continues from.
			if _, err := storage.NewDurableCheckpointer(f.opts.CheckpointDir, f.name, nil).Save(g, e); err != nil {
				return fmt.Errorf("committing bootstrap checkpoint: %w", err)
			}
		}
	}
	if f.opts.durable() {
		rec, err := recoverLiveAt(base, baseEpoch, f.name, f.opts.CheckpointDir, f.walDir(), f.opts.Walk)
		if err != nil {
			return err
		}
		f.live.Store(rec.Live)
		f.wal = rec.WAL
		f.ckpt = storage.NewDurableCheckpointer(f.opts.CheckpointDir, f.name, f.wal)
		if err := f.reg.AddLive(f.name, rec.Live,
			WithDurability(f.wal), WithOrigin(rec.Origin, rec.OriginEpoch)); err != nil {
			f.wal.Close()
			return err
		}
	} else {
		dg, err := dynamic.FromEntityGraph(base)
		if err != nil {
			return err
		}
		live, err := dynamic.NewLiveAt(dg, f.opts.Walk, baseEpoch)
		if err != nil {
			return err
		}
		f.live.Store(live)
		if err := f.reg.AddLive(f.name, live); err != nil {
			return err
		}
	}
	gr, _ := f.reg.Get(f.name)
	f.gr = gr
	f.publishStatus(func(st *FollowStatus) { st.AppliedEpoch = f.Applied() })
	return nil
}

func (f *Follower) walDir() string { return filepath.Join(f.opts.WALRoot, f.name) }

// run is the replication loop: poll, apply, repeat; back off on
// retryable failures, stop on divergence.
func (f *Follower) run(ctx context.Context) {
	defer close(f.done)
	for {
		err := f.poll(ctx)
		switch {
		case ctx.Err() != nil:
			return
		case err == nil:
			f.publishStatus(func(st *FollowStatus) { st.Err = "" })
			continue
		case errors.Is(err, errDiverged), errors.Is(err, dynamic.ErrWedged):
			f.publishStatus(func(st *FollowStatus) { st.Err = err.Error() })
			return
		default:
			// Transport failure or damaged stream: re-sync from the last
			// applied epoch after a pause.
			f.publishStatus(func(st *FollowStatus) { st.Resyncs++; st.Err = err.Error() })
			select {
			case <-time.After(f.opts.backoff()):
			case <-ctx.Done():
				return
			}
		}
	}
}

// poll runs one wal-route request and applies everything it ships.
func (f *Follower) poll(ctx context.Context) error {
	applied := f.live.Load().Snapshot().Epoch
	u := fmt.Sprintf("%s/v1/replication/%s/wal?from=%d&wait=%s",
		f.opts.Leader, url.PathEscape(f.name), applied, f.opts.wait())
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, u, nil)
	if err != nil {
		return err
	}
	resp, err := f.opts.client().Do(req)
	if err != nil {
		return err
	}
	defer func() {
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
	}()
	if e, err := strconv.ParseUint(resp.Header.Get(epochHeader), 10, 64); err == nil {
		f.publishStatus(func(st *FollowStatus) { st.LeaderEpoch = e })
	}
	// Followers that tail through a fleet router see the shard's fence
	// stamped on every forwarded replication response; adopting it keeps
	// their persisted fence current, so a follower promoted later starts
	// from a fence the router's next mint strictly exceeds.
	if fence, err := strconv.ParseUint(resp.Header.Get(fenceHeader), 10, 64); err == nil {
		f.reg.adoptFence(fence)
	}
	switch resp.StatusCode {
	case http.StatusOK:
		// fall through to the stream below
	case http.StatusGone:
		// Behind the truncation horizon: tailing cannot catch up any more.
		return f.rebootstrap(ctx)
	case http.StatusConflict:
		return fmt.Errorf("%w: %s", errDiverged, readError(resp))
	default:
		return fmt.Errorf("leader answered %d: %s", resp.StatusCode, readError(resp))
	}
	sr := storage.NewWALStreamReader(resp.Body)
	for {
		rec, err := sr.Next()
		if err == io.EOF {
			return nil
		}
		if err != nil {
			// Damaged or torn stream: nothing from it was applied past the
			// last verified record; re-sync from there.
			return fmt.Errorf("shipped stream from epoch %d: %w", applied, err)
		}
		if rec.Epoch <= f.live.Load().Snapshot().Epoch {
			continue // duplicate delivery after a re-sync; already applied
		}
		if err := f.applyRecord(rec); err != nil {
			return err
		}
	}
}

// applyRecord feeds one verified shipped record through the same
// machinery as a local write and publishes its epoch.
func (f *Follower) applyRecord(rec storage.WALRecord) error {
	snap, err := f.live.Load().ApplyShipped(rec.Epoch, rec.Kind, rec.Payload, func(g *dynamic.Graph) error {
		return applyLogged(g, rec.Kind, rec.Payload)
	})
	if err != nil {
		if errors.Is(err, dynamic.ErrWedged) {
			return err
		}
		// A checksum-valid record that fails to apply means the nodes
		// disagree about history (wrong leader, reset leader): fatal.
		return fmt.Errorf("%w: applying shipped epoch %d: %v", errDiverged, rec.Epoch, err)
	}
	f.gr.publish(snap)
	f.publishStatus(func(st *FollowStatus) { st.AppliedEpoch = snap.Epoch })
	if f.opts.OnApply != nil {
		f.opts.OnApply(snap.Epoch)
	}
	return nil
}

// rebootstrap refetches a whole checkpoint and swaps the facade — the
// slow path for a follower that fell behind the leader's truncation
// horizon. The local WAL is truncated to the new base (every dropped
// record is covered by the fetched snapshot) and re-based so shipped
// appends continue cleanly.
func (f *Follower) rebootstrap(ctx context.Context) error {
	g, e, err := f.fetchBootstrap(ctx)
	if err != nil {
		return err
	}
	if applied := f.live.Load().Snapshot().Epoch; e < applied {
		return fmt.Errorf("%w: leader's bootstrap epoch %d is behind our applied epoch %d", errDiverged, e, applied)
	}
	if f.opts.durable() {
		// The shared checkpointer (also driven by previewd's checkpoint
		// loop) serializes this save against periodic ones — two racing
		// instances could otherwise delete each other's snapshots out from
		// under the manifest.
		if _, err := f.ckpt.Save(g, e); err != nil {
			return fmt.Errorf("committing re-bootstrap checkpoint: %w", err)
		}
		if last, ok := f.wal.LastEpoch(); !ok || last < e {
			if err := f.wal.AlignTo(e); err != nil {
				return err
			}
		}
	}
	dg, err := dynamic.FromEntityGraph(g)
	if err != nil {
		return err
	}
	live, err := dynamic.NewLiveAt(dg, f.opts.Walk, e)
	if err != nil {
		return err
	}
	var src *replSource
	if f.wal != nil {
		live.SetDurability(func(epoch uint64, kind byte, payload []byte) error {
			return f.wal.Append(epoch, kind, payload)
		})
		src = &replSource{wal: f.wal, origin: g, originEpoch: e}
	}
	f.live.Store(live)
	f.gr.resetLive(live, src)
	f.bumpBootstraps()
	f.publishStatus(func(st *FollowStatus) { st.AppliedEpoch = e })
	return nil
}

// fetchBootstrap downloads and validates the leader's checkpoint.
func (f *Follower) fetchBootstrap(ctx context.Context) (*graph.EntityGraph, uint64, error) {
	u := f.opts.Leader + "/v1/replication/" + url.PathEscape(f.name) + "/checkpoint"
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, u, nil)
	if err != nil {
		return nil, 0, err
	}
	resp, err := f.opts.client().Do(req)
	if err != nil {
		return nil, 0, err
	}
	defer func() {
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
	}()
	if resp.StatusCode != http.StatusOK {
		return nil, 0, fmt.Errorf("bootstrap: leader answered %d: %s", resp.StatusCode, readError(resp))
	}
	epoch, err := strconv.ParseUint(resp.Header.Get(epochHeader), 10, 64)
	if err != nil {
		return nil, 0, fmt.Errorf("bootstrap: bad %s header: %v", epochHeader, err)
	}
	g, err := storage.Read(resp.Body)
	if err != nil {
		return nil, 0, fmt.Errorf("bootstrap snapshot: %w", err)
	}
	return g, epoch, nil
}

func (f *Follower) bumpBootstraps() {
	f.publishStatus(func(st *FollowStatus) { st.Bootstraps++ })
}

// publishStatus mutates the status under the lock and republishes a copy
// for the status endpoint.
func (f *Follower) publishStatus(mut func(*FollowStatus)) {
	f.mu.Lock()
	mut(&f.st)
	cp := f.st
	f.mu.Unlock()
	if f.gr != nil {
		f.gr.follow.Store(&cp)
	}
}

// readError extracts the JSON error body (or raw bytes) of a non-2xx
// response for diagnostics; the body is small by construction.
func readError(resp *http.Response) string {
	raw, _ := io.ReadAll(io.LimitReader(resp.Body, 4096))
	return strings.TrimSpace(string(raw))
}

// decodeJSONBody decodes one JSON response body and closes it.
func decodeJSONBody(resp *http.Response, v any) error {
	defer func() {
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
	}()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("status %d: %s", resp.StatusCode, readError(resp))
	}
	return json.NewDecoder(resp.Body).Decode(v)
}
