package service

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"

	"github.com/uta-db/previewtables/internal/core"
	"github.com/uta-db/previewtables/internal/fig1"
	"github.com/uta-db/previewtables/internal/score"
)

// newTestServer registers the paper's Fig. 1 graph as "fig1".
func newTestServer(t testing.TB) (*Registry, *httptest.Server) {
	t.Helper()
	reg := NewRegistry()
	if err := reg.Add("fig1", fig1.Graph()); err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(New(reg))
	t.Cleanup(ts.Close)
	return reg, ts
}

// get fetches a URL and returns status and body.
func get(t testing.TB, url string) (int, []byte) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, body
}

func getJSON(t testing.TB, url string, v any) int {
	t.Helper()
	status, body := get(t, url)
	if err := json.Unmarshal(body, v); err != nil {
		t.Fatalf("decoding %s response %q: %v", url, body, err)
	}
	return status
}

func TestHealthz(t *testing.T) {
	_, ts := newTestServer(t)
	status, body := get(t, ts.URL+"/healthz")
	if status != http.StatusOK || strings.TrimSpace(string(body)) != "ok" {
		t.Fatalf("healthz: status %d body %q", status, body)
	}
}

func TestListGraphs(t *testing.T) {
	reg, ts := newTestServer(t)
	if err := reg.Add("also", fig1.Graph()); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		Graphs []struct {
			Name     string `json:"name"`
			Entities int    `json:"entities"`
			Types    int    `json:"types"`
		} `json:"graphs"`
	}
	if status := getJSON(t, ts.URL+"/v1/graphs", &doc); status != http.StatusOK {
		t.Fatalf("list: status %d", status)
	}
	if len(doc.Graphs) != 2 || doc.Graphs[0].Name != "also" || doc.Graphs[1].Name != "fig1" {
		t.Fatalf("list: got %+v, want sorted [also fig1]", doc.Graphs)
	}
	want := fig1.Graph().Stats()
	if doc.Graphs[1].Entities != want.Entities || doc.Graphs[1].Types != want.Types {
		t.Fatalf("list stats: got %+v, want %+v", doc.Graphs[1], want)
	}
}

func TestStats(t *testing.T) {
	_, ts := newTestServer(t)
	var doc struct {
		Name     string `json:"name"`
		Entities int    `json:"entities"`
		Edges    int    `json:"edges"`
		Types    int    `json:"types"`
		RelTypes int    `json:"rel_types"`
	}
	if status := getJSON(t, ts.URL+"/v1/graphs/fig1/stats", &doc); status != http.StatusOK {
		t.Fatalf("stats: status %d", status)
	}
	want := fig1.Graph().Stats()
	if doc.Name != "fig1" || doc.Entities != want.Entities || doc.Edges != want.Edges ||
		doc.Types != want.Types || doc.RelTypes != want.RelTypes {
		t.Fatalf("stats: got %+v, want %+v", doc, want)
	}
}

// TestPreviewMatchesDirectDiscovery cross-checks the served preview
// against a Discoverer built by hand from the same graph and measures.
func TestPreviewMatchesDirectDiscovery(t *testing.T) {
	_, ts := newTestServer(t)
	var doc struct {
		Graph      string `json:"graph"`
		Constraint struct {
			K    int    `json:"k"`
			N    int    `json:"n"`
			Mode string `json:"mode"`
		} `json:"constraint"`
		Preview struct {
			Score  float64 `json:"score"`
			Tables []struct {
				Key     string `json:"key"`
				Columns []struct {
					Name string `json:"name"`
				} `json:"columns"`
				Tuples []struct {
					Key    string     `json:"key"`
					Values [][]string `json:"values"`
				} `json:"tuples"`
			} `json:"tables"`
		} `json:"preview"`
	}
	url := ts.URL + "/v1/graphs/fig1/preview?k=2&n=3&tuples=4"
	if status := getJSON(t, url, &doc); status != http.StatusOK {
		t.Fatalf("preview: status %d", status)
	}
	if doc.Graph != "fig1" || doc.Constraint.K != 2 || doc.Constraint.N != 3 || doc.Constraint.Mode != "concise" {
		t.Fatalf("preview echo: got %+v", doc)
	}

	g := fig1.Graph()
	set := score.Compute(g, score.DefaultWalkOptions())
	d := core.New(set, core.Options{Key: score.KeyCoverage, NonKey: score.NonKeyCoverage})
	want, err := d.Discover(core.Constraint{K: 2, N: 3})
	if err != nil {
		t.Fatal(err)
	}
	if doc.Preview.Score != want.Score {
		t.Fatalf("preview score: got %g, want %g", doc.Preview.Score, want.Score)
	}
	if len(doc.Preview.Tables) != len(want.Tables) {
		t.Fatalf("preview tables: got %d, want %d", len(doc.Preview.Tables), len(want.Tables))
	}
	for i, wt := range want.Tables {
		if got := doc.Preview.Tables[i].Key; got != g.TypeName(wt.Key) {
			t.Errorf("table %d key: got %q, want %q", i, got, g.TypeName(wt.Key))
		}
		if got, want := len(doc.Preview.Tables[i].Columns), len(wt.NonKeys); got != want {
			t.Errorf("table %d columns: got %d, want %d", i, got, want)
		}
		if len(doc.Preview.Tables[i].Tuples) == 0 {
			t.Errorf("table %d: no tuples despite tuples=4", i)
		}
	}
}

// TestPreviewDeterministic ensures identical requests return identical
// previews (tuple sampling is reseeded per request); only the timing
// field may vary.
func TestPreviewDeterministic(t *testing.T) {
	_, ts := newTestServer(t)
	url := ts.URL + "/v1/graphs/fig1/preview?k=2&n=3&tuples=3"
	canonical := func(raw []byte) string {
		var m map[string]json.RawMessage
		if err := json.Unmarshal(raw, &m); err != nil {
			t.Fatalf("decoding %q: %v", raw, err)
		}
		delete(m, "elapsed_ms")
		out, err := json.Marshal(m)
		if err != nil {
			t.Fatal(err)
		}
		return string(out)
	}
	_, a := get(t, url)
	_, b := get(t, url)
	if canonical(a) != canonical(b) {
		t.Fatalf("preview not deterministic:\n%s\nvs\n%s", a, b)
	}
}

func TestPreviewTightMode(t *testing.T) {
	_, ts := newTestServer(t)
	var doc struct {
		Constraint struct {
			Mode string `json:"mode"`
			D    int    `json:"d"`
		} `json:"constraint"`
		Preview struct {
			Tables []struct{} `json:"tables"`
		} `json:"preview"`
	}
	url := ts.URL + "/v1/graphs/fig1/preview?k=2&n=2&mode=tight&d=1&key=walk&nonkey=entropy"
	if status := getJSON(t, url, &doc); status != http.StatusOK {
		t.Fatalf("tight preview: status %d", status)
	}
	if doc.Constraint.Mode != "tight" || doc.Constraint.D != 1 || len(doc.Preview.Tables) != 2 {
		t.Fatalf("tight preview: got %+v", doc)
	}
}

// TestConstraintEcho pins the d echo: present (even when 0) for
// tight/diverse, absent for concise.
func TestConstraintEcho(t *testing.T) {
	_, ts := newTestServer(t)
	var doc struct {
		Constraint map[string]json.RawMessage `json:"constraint"`
	}
	if status := getJSON(t, ts.URL+"/v1/graphs/fig1/preview?k=1&n=1&mode=tight&d=0", &doc); status != http.StatusOK {
		t.Fatalf("tight d=0: status %d", status)
	}
	if d, ok := doc.Constraint["d"]; !ok || string(d) != "0" {
		t.Fatalf("tight d=0 echo: got %v, want d present as 0", doc.Constraint)
	}
	doc.Constraint = nil // Unmarshal merges into a non-nil map
	if status := getJSON(t, ts.URL+"/v1/graphs/fig1/preview?k=1&n=1", &doc); status != http.StatusOK {
		t.Fatalf("concise: status %d", status)
	}
	if _, ok := doc.Constraint["d"]; ok {
		t.Fatalf("concise echo carries meaningless d: %v", doc.Constraint)
	}
}

func TestErrors(t *testing.T) {
	_, ts := newTestServer(t)
	cases := []struct {
		name   string
		url    string
		status int
	}{
		{"unknown graph", "/v1/graphs/nope/stats", http.StatusNotFound},
		{"unknown action", "/v1/graphs/fig1/nope", http.StatusNotFound},
		{"unknown route", "/v2/nope", http.StatusNotFound},
		{"bare graph path", "/v1/graphs/fig1", http.StatusNotFound},
		{"bad k", "/v1/graphs/fig1/preview?k=0", http.StatusBadRequest},
		{"n below k", "/v1/graphs/fig1/preview?k=3&n=2", http.StatusBadRequest},
		{"bad int", "/v1/graphs/fig1/preview?k=two", http.StatusBadRequest},
		{"bad mode", "/v1/graphs/fig1/preview?mode=loose", http.StatusBadRequest},
		{"bad key measure", "/v1/graphs/fig1/preview?key=pagerank", http.StatusBadRequest},
		{"bad nonkey measure", "/v1/graphs/fig1/preview?nonkey=gini", http.StatusBadRequest},
		{"tuples out of range", "/v1/graphs/fig1/preview?tuples=100000", http.StatusBadRequest},
		{"k above cap", "/v1/graphs/fig1/preview?k=1000&n=2000", http.StatusBadRequest},
		{"n above cap", "/v1/graphs/fig1/preview?k=2&n=2000000000", http.StatusBadRequest},
		{"bad format", "/v1/graphs/fig1/render?format=pdf", http.StatusBadRequest},
		{"no preview", "/v1/graphs/fig1/preview?k=50&n=50", http.StatusUnprocessableEntity},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var doc struct {
				Error string `json:"error"`
			}
			status := getJSON(t, ts.URL+tc.url, &doc)
			if status != tc.status {
				t.Fatalf("%s: status %d, want %d", tc.url, status, tc.status)
			}
			if doc.Error == "" {
				t.Fatalf("%s: empty error body", tc.url)
			}
		})
	}
}

func TestMethodNotAllowed(t *testing.T) {
	_, ts := newTestServer(t)
	resp, err := http.Post(ts.URL+"/v1/graphs", "application/json", strings.NewReader("{}"))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("POST: status %d, want 405", resp.StatusCode)
	}
	if allow := resp.Header.Get("Allow"); !strings.Contains(allow, "GET") {
		t.Fatalf("POST: Allow header %q", allow)
	}
}

func TestRenderText(t *testing.T) {
	_, ts := newTestServer(t)
	status, body := get(t, ts.URL+"/v1/graphs/fig1/render?k=2&n=3&tuples=4")
	if status != http.StatusOK {
		t.Fatalf("render: status %d body %q", status, body)
	}
	out := string(body)
	if !strings.Contains(out, "preview: 2 tables") || !strings.Contains(out, fig1.Film) {
		t.Fatalf("render text missing expected content:\n%s", out)
	}
}

func TestRenderMarkdown(t *testing.T) {
	_, ts := newTestServer(t)
	status, body := get(t, ts.URL+"/v1/graphs/fig1/render?k=1&n=2&tuples=2&format=markdown")
	if status != http.StatusOK {
		t.Fatalf("render markdown: status %d body %q", status, body)
	}
	out := string(body)
	if !strings.Contains(out, "| **"+fig1.Film+"** |") || !strings.Contains(out, "|---|") {
		t.Fatalf("render markdown missing expected content:\n%s", out)
	}
}

// TestSearchBudgetExceeded pins the HTTP mapping of core.ErrSearchBudget:
// a degenerate diverse request whose candidate space exceeds the server's
// budget fails fast with 422 instead of pinning a CPU.
func TestSearchBudgetExceeded(t *testing.T) {
	reg := NewRegistry()
	if err := reg.Add("fig1", fig1.Graph()); err != nil {
		t.Fatal(err)
	}
	srv := New(reg)
	srv.SearchBudget = 2 // starve it; fig1 is small enough to finish otherwise
	ts := httptest.NewServer(srv)
	defer ts.Close()
	var doc struct {
		Error string `json:"error"`
	}
	status := getJSON(t, ts.URL+"/v1/graphs/fig1/preview?k=3&n=3&mode=diverse&d=0", &doc)
	if status != http.StatusUnprocessableEntity {
		t.Fatalf("budget exceeded: status %d, want 422", status)
	}
	if !strings.Contains(doc.Error, "budget") {
		t.Fatalf("budget exceeded: error %q does not mention the budget", doc.Error)
	}
}

// TestConcurrentRequestsShareOneCompute is the cache-concurrency test:
// many goroutines race preview and render requests across measure pairs,
// yet score.Compute runs exactly once for the graph.
func TestConcurrentRequestsShareOneCompute(t *testing.T) {
	reg, ts := newTestServer(t)
	urls := []string{
		ts.URL + "/v1/graphs/fig1/preview?k=2&n=3",
		ts.URL + "/v1/graphs/fig1/preview?k=2&n=3&key=walk",
		ts.URL + "/v1/graphs/fig1/preview?k=2&n=3&nonkey=entropy",
		ts.URL + "/v1/graphs/fig1/render?k=1&n=1",
	}
	const workers = 16
	var wg sync.WaitGroup
	errs := make(chan error, workers*len(urls))
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for _, u := range urls {
				resp, err := http.Get(u)
				if err != nil {
					errs <- err
					continue
				}
				if resp.StatusCode != http.StatusOK {
					errs <- fmt.Errorf("%s: status %d", u, resp.StatusCode)
				}
				io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
	if n := reg.ScoreComputes(); n != 1 {
		t.Fatalf("score.Compute ran %d times under concurrency, want exactly 1", n)
	}
}

// TestDiscovererIdentity pins the cache contract at the registry level:
// the same measure pair yields the same *core.Discoverer, distinct pairs
// distinct ones, and everything shares one score set.
func TestDiscovererIdentity(t *testing.T) {
	reg := NewRegistry()
	if err := reg.Add("g", fig1.Graph()); err != nil {
		t.Fatal(err)
	}
	gr, ok := reg.Get("g")
	if !ok {
		t.Fatal("registered graph not found")
	}
	a := gr.Discoverer(score.KeyCoverage, score.NonKeyCoverage)
	b := gr.Discoverer(score.KeyCoverage, score.NonKeyCoverage)
	c := gr.Discoverer(score.KeyRandomWalk, score.NonKeyCoverage)
	if a != b {
		t.Error("same measure pair returned distinct Discoverers")
	}
	if a == c {
		t.Error("distinct measure pairs shared a Discoverer")
	}
	if a.Scores() != c.Scores() {
		t.Error("distinct measure pairs did not share the score set")
	}
	if n := reg.ScoreComputes(); n != 1 {
		t.Fatalf("score.Compute ran %d times, want 1", n)
	}
}

func TestRegistryAdd(t *testing.T) {
	reg := NewRegistry()
	if err := reg.Add("g", fig1.Graph()); err != nil {
		t.Fatal(err)
	}
	if err := reg.Add("g", fig1.Graph()); err == nil {
		t.Error("duplicate Add succeeded")
	}
	if err := reg.Add("", fig1.Graph()); err == nil {
		t.Error("empty-name Add succeeded")
	}
	if err := reg.Add("a/b", fig1.Graph()); err == nil {
		t.Error("Add with '/' in name succeeded")
	}
	if err := reg.Add("nil", nil); err == nil {
		t.Error("nil-graph Add succeeded")
	}
	if _, ok := reg.Get("missing"); ok {
		t.Error("Get returned a graph never registered")
	}
}

// BenchmarkPreviewCacheHit measures the steady-state preview path: the
// Discoverer is warm, so each request is parse + discover + encode with
// no score.Compute. The benchmark fails if the precomputation re-runs.
func BenchmarkPreviewCacheHit(b *testing.B) {
	reg := NewRegistry()
	if err := reg.Add("fig1", fig1.Graph()); err != nil {
		b.Fatal(err)
	}
	srv := New(reg)
	warm := httptest.NewRequest(http.MethodGet, "/v1/graphs/fig1/preview?k=2&n=3&tuples=4", nil)
	srv.ServeHTTP(httptest.NewRecorder(), warm)
	if n := reg.ScoreComputes(); n != 1 {
		b.Fatalf("warmup: score.Compute ran %d times, want 1", n)
	}
	b.ReportAllocs()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			req := httptest.NewRequest(http.MethodGet, "/v1/graphs/fig1/preview?k=2&n=3&tuples=4", nil)
			rec := httptest.NewRecorder()
			srv.ServeHTTP(rec, req)
			if rec.Code != http.StatusOK {
				panic(fmt.Sprintf("status %d: %s", rec.Code, rec.Body))
			}
		}
	})
	b.StopTimer()
	if n := reg.ScoreComputes(); n != 1 {
		b.Fatalf("cache-hit path re-ran score.Compute: %d runs, want 1", n)
	}
}

// BenchmarkPreviewCacheMiss is the contrast case: a fresh registry per
// iteration pays the full score.Compute precomputation.
func BenchmarkPreviewCacheMiss(b *testing.B) {
	g := fig1.Graph()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		reg := NewRegistry()
		if err := reg.Add("fig1", g); err != nil {
			b.Fatal(err)
		}
		req := httptest.NewRequest(http.MethodGet, "/v1/graphs/fig1/preview?k=2&n=3&tuples=4", nil)
		rec := httptest.NewRecorder()
		New(reg).ServeHTTP(rec, req)
		if rec.Code != http.StatusOK {
			b.Fatalf("status %d: %s", rec.Code, rec.Body)
		}
	}
}
