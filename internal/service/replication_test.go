package service

// Replication tests: the proof obligations of WAL shipping.
//
//   - the differential e2e test pins the headline invariant: a caught-up
//     follower serves byte-identical bodies on every read endpoint,
//     including after being killed and restarted from its local state;
//   - the contiguity property pins the epoch discipline under
//     interleaved writes, dropped connections and follower restarts;
//   - the corruption tests pin that nothing damaged is ever published —
//     a flipped byte mid-stream or mid-local-WAL costs a re-sync from
//     the last good epoch, never a corrupt epoch;
//   - the route-discipline table locks the unified 404/405/503 ordering
//     across leader and follower modes.

import (
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"github.com/uta-db/previewtables/internal/fig1"
	"github.com/uta-db/previewtables/internal/score"
	"github.com/uta-db/previewtables/internal/storage"
)

// followerNode is one follower "process": its own registry, HTTP server
// and replication loop, resumable from ckptDir/walRoot.
type followerNode struct {
	reg *Registry
	f   *Follower
	ts  *httptest.Server
}

// startFollowerNode boots a follower of leaderURL with test-friendly
// poll timings. Empty dirs mean a volatile follower.
func startFollowerNode(t testing.TB, leaderURL, ckptDir, walRoot string, mut ...func(*FollowerOptions)) *followerNode {
	t.Helper()
	opts := FollowerOptions{
		Leader:        leaderURL,
		Walk:          score.DefaultWalkOptions(),
		CheckpointDir: ckptDir,
		WALRoot:       walRoot,
		Wait:          150 * time.Millisecond,
		Backoff:       5 * time.Millisecond,
	}
	for _, m := range mut {
		m(&opts)
	}
	reg := NewRegistry()
	f, err := StartFollower(reg, "fig1", opts)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(f.Stop)
	srv := New(reg)
	srv.OnPromote = f.Promote
	ts := httptest.NewServer(srv)
	t.Cleanup(ts.Close)
	return &followerNode{reg: reg, f: f, ts: ts}
}

// replBatches are self-contained, pairwise-independent write batches —
// every edge fully typed, no edge repeated — so they can be applied
// concurrently in any order and still leave leader and follower replays
// byte-comparable (no multigraph dedup divergence).
var replBatches = []struct{ route, body string }{
	{"edges", `{"edges":[{"from":"Gattaca","rel":"Genres","from_type":"` + fig1.Film + `","to_type":"` + fig1.FilmGenre + `","to":"Science Fiction"}]}`},
	{"edges", `{"edges":[{"from":"Andrew Niccol","rel":"Director","from_type":"` + fig1.FilmDirector + `","to_type":"` + fig1.Film + `","to":"Gattaca"}]}`},
	{"triples", "type \"STUDIO\"\nentity \"Columbia Pictures\" \"STUDIO\"\n" +
		"edge \"Columbia Pictures\" \"Produced By\" \"STUDIO\" \"" + fig1.Film + "\" \"Gattaca\"\n"},
	{"edges", `{"edges":[{"from":"Uma Thurman","rel":"Actor","from_type":"` + fig1.FilmActor + `","to_type":"` + fig1.Film + `","to":"Gattaca"}]}`},
	{"edges", `{"edges":[{"from":"Kill Bill","rel":"Genres","from_type":"` + fig1.Film + `","to_type":"` + fig1.FilmGenre + `","to":"Action Film"}]}`},
	{"triples", "edge \"Uma Thurman\" \"Actor\" \"" + fig1.FilmActor + "\" \"" + fig1.Film + "\" \"Kill Bill\"\n"},
}

// replReadURLs is every read surface the differential test compares —
// the /v1/graphs list, stats, JSON previews across measure pairs and
// modes (with sampled tuples), and the markdown rendering.
var replReadURLs = []string{
	"/v1/graphs",
	"/v1/graphs/fig1/stats",
	"/v1/graphs/fig1/preview?k=2&n=3&tuples=3&key=coverage&nonkey=coverage",
	"/v1/graphs/fig1/preview?k=3&n=6&tuples=2&key=coverage&nonkey=entropy",
	"/v1/graphs/fig1/preview?k=2&n=4&mode=tight&d=2&key=walk&nonkey=entropy",
	"/v1/graphs/fig1/render?k=2&n=3&tuples=3&key=coverage&nonkey=coverage&format=markdown",
}

// readSurfaces fetches urls. Bodies carry no timing field, so leader
// and follower are compared raw, byte for byte — and their ETags must
// agree too (same graph, same epoch, same canonical key mint the same
// strong validator on both nodes), so the tag is folded into the
// compared value.
func readSurfaces(t testing.TB, base string, urls []string) map[string]string {
	t.Helper()
	out := make(map[string]string, len(urls))
	for _, u := range urls {
		resp, err := http.Get(base + u)
		if err != nil {
			t.Fatal(err)
		}
		raw, err := io.ReadAll(resp.Body)
		resp.Body.Close()
		if err != nil {
			t.Fatal(err)
		}
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET %s: status %d body %s", u, resp.StatusCode, raw)
		}
		out[u] = resp.Header.Get("ETag") + "\n" + string(raw)
	}
	return out
}

func assertIdenticalReads(t *testing.T, what string, leader, follower map[string]string) {
	t.Helper()
	for u, want := range leader {
		if got, ok := follower[u]; !ok || got != want {
			t.Errorf("%s: GET %s diverged between leader and follower:\nleader:   %s\nfollower: %s", what, u, want, got)
		}
	}
}

// TestReplicationDifferential is the acceptance test: concurrent write
// batches land on a live leader; a follower started with nothing but the
// leader's address reaches the leader's epoch and serves byte-identical
// bodies on every read endpoint; killing the follower and restarting it
// from its local checkpoint + WAL preserves both properties, without
// re-shipping history it already holds.
func TestReplicationDifferential(t *testing.T) {
	root := t.TempDir()
	leader := startDurable(t, "", filepath.Join(root, "leader-wal"))

	fCkpt := filepath.Join(root, "follower-ckpt")
	fWAL := filepath.Join(root, "follower-wal")
	if err := os.MkdirAll(fCkpt, 0o755); err != nil {
		t.Fatal(err)
	}
	node := startFollowerNode(t, leader.ts.URL, fCkpt, fWAL)

	// Concurrent writers: the batches are order-independent, so whatever
	// order the leader serializes them in is the order the WAL ships.
	var wg sync.WaitGroup
	for _, b := range replBatches {
		wg.Add(1)
		go func(route, body string) {
			defer wg.Done()
			postBatch(t, leader.ts, route, body)
		}(b.route, b.body)
	}
	wg.Wait()
	wantEpoch := uint64(len(replBatches))
	if got := leader.live.Snapshot().Epoch; got != wantEpoch {
		t.Fatalf("leader epoch = %d, want %d", got, wantEpoch)
	}
	if err := node.f.WaitCaughtUp(wantEpoch, 30*time.Second); err != nil {
		t.Fatal(err)
	}
	assertIdenticalReads(t, "after catch-up",
		readSurfaces(t, leader.ts.URL, replReadURLs), readSurfaces(t, node.ts.URL, replReadURLs))

	// A write to the follower is redirected, not applied.
	status, raw := post(t, node.ts.URL+"/v1/graphs/fig1/edges", replBatches[0].body)
	if status != http.StatusServiceUnavailable || !strings.Contains(string(raw), leader.ts.URL) {
		t.Fatalf("follower write: status %d body %s, want 503 naming the leader", status, raw)
	}
	if got := node.f.Applied(); got != wantEpoch {
		t.Fatalf("redirected write moved the follower to epoch %d", got)
	}

	// Kill the follower (SIGKILL-style: loop stopped, listener gone) and
	// restart it from its own durable state.
	node.f.Stop()
	node.ts.Close()
	node2 := startFollowerNode(t, leader.ts.URL, fCkpt, fWAL)
	if got := node2.f.Applied(); got != wantEpoch {
		t.Fatalf("restarted follower resumed at epoch %d, want %d (local recovery)", got, wantEpoch)
	}
	if st := node2.f.Status(); st.Bootstraps != 0 {
		t.Fatalf("restarted follower re-bootstrapped %d times; local state should have sufficed", st.Bootstraps)
	}
	assertIdenticalReads(t, "after follower restart",
		readSurfaces(t, leader.ts.URL, replReadURLs), readSurfaces(t, node2.ts.URL, replReadURLs))

	// The restarted follower still tails: one more leader batch arrives.
	postBatch(t, leader.ts, "edges",
		`{"edges":[{"from":"Kill Bill","rel":"Director","from_type":"FILM","to_type":"`+fig1.FilmDirector+`","to":"Quentin Tarantino"}]}`)
	if err := node2.f.WaitCaughtUp(wantEpoch+1, 30*time.Second); err != nil {
		t.Fatal(err)
	}
	assertIdenticalReads(t, "after post-restart batch",
		readSurfaces(t, leader.ts.URL, replReadURLs), readSurfaces(t, node2.ts.URL, replReadURLs))
}

// TestFollowerEpochContiguity is the property test: under interleaved
// writes, a flaky transport that drops every third request, and a
// follower kill/restart mid-stream, every epoch a follower instance
// publishes is exactly its predecessor+1 — never a gap, never a repeat —
// and a restarted instance resumes at most at its durable prefix, so the
// union of published epochs is a contiguous prefix of the leader's.
func TestFollowerEpochContiguity(t *testing.T) {
	root := t.TempDir()
	leader := startDurable(t, "", filepath.Join(root, "leader-wal"))
	fCkpt := filepath.Join(root, "f-ckpt")
	fWAL := filepath.Join(root, "f-wal")
	if err := os.MkdirAll(fCkpt, 0o755); err != nil {
		t.Fatal(err)
	}

	const totalBatches = 24
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < totalBatches; i++ {
			body := fmt.Sprintf(`{"edges":[{"from":"Film %03d","rel":"Genres","from_type":%q,"to_type":%q,"to":"Action Film"}]}`,
				i, fig1.Film, fig1.FilmGenre)
			postBatch(t, leader.ts, "edges", body)
			time.Sleep(2 * time.Millisecond)
		}
	}()

	var mu sync.Mutex
	var sequences [][]uint64 // applied epochs per follower instance
	record := func() func(uint64) {
		mu.Lock()
		defer mu.Unlock()
		sequences = append(sequences, nil)
		i := len(sequences) - 1
		return func(e uint64) {
			mu.Lock()
			defer mu.Unlock()
			sequences[i] = append(sequences[i], e)
		}
	}

	flaky := func(o *FollowerOptions) {
		n := 0
		var fmu sync.Mutex
		o.Client = &http.Client{Transport: roundTripFunc(func(r *http.Request) (*http.Response, error) {
			fmu.Lock()
			n++
			drop := n%3 == 0
			fmu.Unlock()
			if drop {
				return nil, fmt.Errorf("injected disconnect")
			}
			return http.DefaultTransport.RoundTrip(r)
		})}
	}

	onApply := record()
	node := startFollowerNode(t, leader.ts.URL, fCkpt, fWAL, flaky,
		func(o *FollowerOptions) { o.OnApply = onApply })
	// Kill it somewhere mid-stream.
	if err := node.f.WaitCaughtUp(totalBatches/3, 30*time.Second); err != nil {
		t.Fatal(err)
	}
	node.f.Stop()
	node.ts.Close()
	resumedAt := node.f.Applied()

	onApply2 := record()
	node2 := startFollowerNode(t, leader.ts.URL, fCkpt, fWAL, flaky,
		func(o *FollowerOptions) { o.OnApply = onApply2 })
	if got := node2.f.Applied(); got > resumedAt {
		t.Fatalf("restarted follower at epoch %d, ahead of the killed instance's %d", got, resumedAt)
	}
	wg.Wait()
	if err := node2.f.WaitCaughtUp(totalBatches, 30*time.Second); err != nil {
		t.Fatal(err)
	}

	mu.Lock()
	defer mu.Unlock()
	high := uint64(0)
	for i, seq := range sequences {
		for j := 1; j < len(seq); j++ {
			if seq[j] != seq[j-1]+1 {
				t.Fatalf("instance %d published a non-contiguous epoch: %d after %d (sequence %v)", i, seq[j], seq[j-1], seq)
			}
		}
		if len(seq) > 0 {
			if first := seq[0]; first > high+1 {
				t.Fatalf("instance %d started at epoch %d, leaving a gap after %d", i, first, high)
			}
			if last := seq[len(seq)-1]; last > high {
				high = last
			}
		}
	}
	if high != totalBatches {
		t.Fatalf("followers reached epoch %d, want %d", high, totalBatches)
	}
	assertIdenticalReads(t, "after contiguity run",
		readSurfaces(t, leader.ts.URL, replReadURLs), readSurfaces(t, node2.ts.URL, replReadURLs))
}

type roundTripFunc func(*http.Request) (*http.Response, error)

func (f roundTripFunc) RoundTrip(r *http.Request) (*http.Response, error) { return f(r) }

// TestFollowerRejectsCorruptStream: a byte flipped in flight fails the
// record checksum; the follower drops the stream, publishes nothing from
// it, re-syncs from its last good epoch, and still converges to
// byte-identical reads.
func TestFollowerRejectsCorruptStream(t *testing.T) {
	root := t.TempDir()
	leader := startDurable(t, "", filepath.Join(root, "leader-wal"))
	srv := leader.srv

	var pmu sync.Mutex
	corrupted := 0
	proxy := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		rr := httptest.NewRecorder()
		srv.ServeHTTP(rr, r)
		body := rr.Body.Bytes()
		pmu.Lock()
		if corrupted == 0 && strings.Contains(r.URL.Path, "/wal") && len(body) > 8 && rr.Code == http.StatusOK {
			body[len(body)/2] ^= 0xff
			corrupted++
		}
		pmu.Unlock()
		for k, vs := range rr.Header() {
			for _, v := range vs {
				w.Header().Add(k, v)
			}
		}
		w.WriteHeader(rr.Code)
		w.Write(body)
	}))
	defer proxy.Close()

	for _, b := range replBatches[:4] {
		postBatch(t, leader.ts, b.route, b.body)
	}
	node := startFollowerNode(t, proxy.URL, "", "")
	if err := node.f.WaitCaughtUp(4, 30*time.Second); err != nil {
		t.Fatal(err)
	}
	pmu.Lock()
	hits := corrupted
	pmu.Unlock()
	if hits == 0 {
		t.Fatal("the corrupting proxy never fired; the test proved nothing")
	}
	if st := node.f.Status(); st.Resyncs == 0 {
		t.Fatalf("follower converged without re-syncing (status %+v); the corrupt stream was accepted?", st)
	}
	assertIdenticalReads(t, "after corrupt stream",
		readSurfaces(t, leader.ts.URL, replReadURLs), readSurfaces(t, node.ts.URL, replReadURLs))
}

// TestFollowerLocalWALCorruption: damage in the follower's own WAL
// shrinks its recoverable prefix; restart must recover to the last good
// epoch (ErrCorrupt discipline, never a corrupt publish) and re-ship the
// difference from the leader, converging to byte-identical reads.
func TestFollowerLocalWALCorruption(t *testing.T) {
	root := t.TempDir()
	leader := startDurable(t, "", filepath.Join(root, "leader-wal"))
	fCkpt := filepath.Join(root, "f-ckpt")
	fWAL := filepath.Join(root, "f-wal")
	if err := os.MkdirAll(fCkpt, 0o755); err != nil {
		t.Fatal(err)
	}

	for _, b := range replBatches {
		postBatch(t, leader.ts, b.route, b.body)
	}
	node := startFollowerNode(t, leader.ts.URL, fCkpt, fWAL)
	wantEpoch := uint64(len(replBatches))
	if err := node.f.WaitCaughtUp(wantEpoch, 30*time.Second); err != nil {
		t.Fatal(err)
	}
	node.f.Stop()
	node.ts.Close()

	// Flip a byte in the middle of the follower's local log: the valid
	// prefix now ends somewhere before wantEpoch.
	segs, err := filepath.Glob(filepath.Join(fWAL, "fig1", "*.wal"))
	if err != nil || len(segs) == 0 {
		t.Fatalf("no follower segments: %v (%v)", segs, err)
	}
	data, err := os.ReadFile(segs[0])
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)/2] ^= 0xff
	if err := os.WriteFile(segs[0], data, 0o644); err != nil {
		t.Fatal(err)
	}
	recs, replayErr := storage.ReplayWAL(filepath.Join(fWAL, "fig1"))
	if replayErr == nil || len(recs) >= int(wantEpoch) {
		t.Fatalf("corruption did not shrink the prefix: %d records, err %v", len(recs), replayErr)
	}

	node2 := startFollowerNode(t, leader.ts.URL, fCkpt, fWAL)
	if got := node2.f.Applied(); got > wantEpoch {
		t.Fatalf("follower recovered past its valid prefix: epoch %d", got)
	}
	if err := node2.f.WaitCaughtUp(wantEpoch, 30*time.Second); err != nil {
		t.Fatal(err)
	}
	assertIdenticalReads(t, "after local WAL corruption",
		readSurfaces(t, leader.ts.URL, replReadURLs), readSurfaces(t, node2.ts.URL, replReadURLs))

	// And a further restart proves the re-synced local log is coherent.
	node2.f.Stop()
	node2.ts.Close()
	node3 := startFollowerNode(t, leader.ts.URL, fCkpt, fWAL)
	if got := node3.f.Applied(); got != wantEpoch {
		t.Fatalf("post-resync restart at epoch %d, want %d", got, wantEpoch)
	}
}

// TestFollowerRebootstrapPastHorizon: a leader checkpoint truncates the
// WAL, so a cold follower's from=0 is behind the horizon. Bootstrap must
// fall back to the current snapshot (410 → checkpoint route) and tailing
// continues from there. Count-backed surfaces stay byte-identical; the
// entropy preview is excluded, as in the leader's own checkpoint
// recovery (the snapshot canonicalizes edge order, so the incremental
// entropy aggregate is equal only to the last ulp).
func TestFollowerRebootstrapPastHorizon(t *testing.T) {
	root := t.TempDir()
	ckptDir := filepath.Join(root, "leader-ckpt")
	if err := os.MkdirAll(ckptDir, 0o755); err != nil {
		t.Fatal(err)
	}
	leader := startDurable(t, ckptDir, filepath.Join(root, "leader-wal"))
	for _, b := range replBatches[:4] {
		postBatch(t, leader.ts, b.route, b.body)
	}
	snap := leader.live.Snapshot()
	ck := storage.NewDurableCheckpointer(ckptDir, "fig1", leader.wal)
	if wrote, err := ck.Save(snap.Frozen, snap.Epoch); err != nil || !wrote {
		t.Fatalf("leader checkpoint: wrote=%v err=%v", wrote, err)
	}
	if _, ok := leader.wal.FirstEpoch(); ok {
		t.Fatal("checkpoint did not truncate the leader WAL; the horizon test is vacuous")
	}

	node := startFollowerNode(t, leader.ts.URL, "", "")
	if got := node.f.Applied(); got != 4 {
		t.Fatalf("cold follower bootstrapped at epoch %d, want 4 (current snapshot)", got)
	}
	for _, b := range replBatches[4:] {
		postBatch(t, leader.ts, b.route, b.body)
	}
	wantEpoch := uint64(len(replBatches))
	if err := node.f.WaitCaughtUp(wantEpoch, 30*time.Second); err != nil {
		t.Fatal(err)
	}
	countBacked := []string{
		"/v1/graphs",
		"/v1/graphs/fig1/stats",
		"/v1/graphs/fig1/preview?k=2&n=3&tuples=3&key=coverage&nonkey=coverage",
		"/v1/graphs/fig1/render?k=2&n=3&tuples=3&key=coverage&nonkey=coverage&format=markdown",
	}
	assertIdenticalReads(t, "after horizon bootstrap",
		readSurfaces(t, leader.ts.URL, countBacked), readSurfaces(t, node.ts.URL, countBacked))
	if st := node.f.Status(); st.Bootstraps != 1 {
		t.Fatalf("bootstraps = %d, want 1", st.Bootstraps)
	}
}

// TestReplicationStatusDoc pins the status endpoint's shape per role.
func TestReplicationStatusDoc(t *testing.T) {
	root := t.TempDir()
	leader := startDurable(t, "", filepath.Join(root, "leader-wal"))
	for _, b := range replBatches[:2] {
		postBatch(t, leader.ts, b.route, b.body)
	}
	var ls replStatusDoc
	if st := getJSON(t, leader.ts.URL+"/v1/replication/fig1/status", &ls); st != http.StatusOK {
		t.Fatalf("leader status: %d", st)
	}
	if ls.Role != "leader" || ls.Epoch != 2 || ls.DurableEpoch != 2 || ls.Horizon != 0 {
		t.Fatalf("leader status doc %+v", ls)
	}
	if ls.OriginEpoch == nil || *ls.OriginEpoch != 0 {
		t.Fatalf("leader origin epoch %v, want 0", ls.OriginEpoch)
	}

	node := startFollowerNode(t, leader.ts.URL, "", "")
	if err := node.f.WaitCaughtUp(2, 30*time.Second); err != nil {
		t.Fatal(err)
	}
	var fs replStatusDoc
	if st := getJSON(t, node.ts.URL+"/v1/replication/fig1/status", &fs); st != http.StatusOK {
		t.Fatalf("follower status: %d", st)
	}
	if fs.Role != "follower" || fs.Leader != leader.ts.URL {
		t.Fatalf("follower status doc %+v", fs)
	}
	if fs.AppliedEpoch == nil || *fs.AppliedEpoch != 2 || fs.Lag == nil || *fs.Lag != 0 {
		t.Fatalf("follower progress %+v", fs)
	}
}

// TestReplicationRouteDiscipline is the shared table locking the
// 404/405/503 ordering across leader-static, leader-mutable and follower
// modes: resource existence first (404 whatever the method), then the
// route's true method set (405 with an accurate Allow — empty when the
// route supports no method at all), then writability (503 naming the
// leader on a replica).
func TestReplicationRouteDiscipline(t *testing.T) {
	root := t.TempDir()
	leader := startDurable(t, "", filepath.Join(root, "leader-wal")) // mutable durable leader
	_, staticTS := newTestServer(t)                                  // static read-only graph
	follower := startFollowerNode(t, leader.ts.URL, "", "")

	type want struct {
		status int
		allow  *string // nil = not asserted; non-nil must match exactly
		leader bool    // X-Previewtables-Leader must name the leader
	}
	str := func(s string) *string { return &s }
	cases := []struct {
		name   string
		ts     *httptest.Server
		method string
		path   string
		want   want
	}{
		// Resource existence beats method on every server.
		{"static unknown graph", staticTS, "DELETE", "/v1/graphs/nope/edges", want{status: 404}},
		{"mutable unknown graph", leader.ts, "DELETE", "/v1/graphs/nope/edges", want{status: 404}},
		{"follower unknown graph", follower.ts, "POST", "/v1/graphs/nope/edges", want{status: 404}},
		{"unknown action", leader.ts, "POST", "/v1/graphs/fig1/explode", want{status: 404}},
		{"unknown replication action", leader.ts, "GET", "/v1/replication/fig1/explode", want{status: 404}},
		{"replication unknown graph", leader.ts, "GET", "/v1/replication/nope/status", want{status: 404}},
		{"replication of static graph", staticTS, "GET", "/v1/replication/fig1/status", want{status: 404}},
		// Read routes allow GET, HEAD everywhere.
		{"static read wrong method", staticTS, "POST", "/v1/graphs/fig1/stats", want{status: 405, allow: str("GET, HEAD")}},
		{"follower read wrong method", follower.ts, "POST", "/v1/graphs/fig1/stats", want{status: 405, allow: str("GET, HEAD")}},
		{"replication wrong method", leader.ts, "POST", "/v1/replication/fig1/status", want{status: 405, allow: str("GET, HEAD")}},
		// HEAD is a first-class read method: 200 on read routes on every
		// server role, and the same 404/405 ordering as any other method
		// elsewhere (the 304 arm of HEAD lives in TestHeadDiscipline,
		// which compares HEAD's headers against GET's byte for byte).
		{"HEAD static read", staticTS, "HEAD", "/v1/graphs/fig1/stats", want{status: 200}},
		{"HEAD mutable read", leader.ts, "HEAD", "/v1/graphs/fig1/preview?k=2&n=3", want{status: 200}},
		{"HEAD follower read", follower.ts, "HEAD", "/v1/graphs", want{status: 200}},
		{"HEAD unknown graph", staticTS, "HEAD", "/v1/graphs/nope/stats", want{status: 404}},
		{"HEAD unknown action", leader.ts, "HEAD", "/v1/graphs/fig1/explode", want{status: 404}},
		{"HEAD static write route", staticTS, "HEAD", "/v1/graphs/fig1/edges", want{status: 405, allow: str("")}},
		{"HEAD mutable write route", leader.ts, "HEAD", "/v1/graphs/fig1/triples", want{status: 405, allow: str("POST")}},
		// A read-only graph's write routes support no method at all.
		{"static write POST", staticTS, "POST", "/v1/graphs/fig1/edges", want{status: 405, allow: str("")}},
		{"static write GET", staticTS, "GET", "/v1/graphs/fig1/edges", want{status: 405, allow: str("")}},
		{"static write DELETE", staticTS, "DELETE", "/v1/graphs/fig1/triples", want{status: 405, allow: str("")}},
		// A mutable graph's write routes are POST-only.
		{"mutable write GET", leader.ts, "GET", "/v1/graphs/fig1/edges", want{status: 405, allow: str("POST")}},
		{"mutable write PUT", leader.ts, "PUT", "/v1/graphs/fig1/triples", want{status: 405, allow: str("POST")}},
		// The promote action exists only on follower nodes: a leader (or a
		// static server) has nothing to promote, so the resource itself is
		// absent — 404 before any method check; on a follower it is
		// POST-only like every other state-changing action.
		{"promote on leader", leader.ts, "POST", "/v1/replication/promote", want{status: 404}},
		{"promote on static server", staticTS, "POST", "/v1/replication/promote", want{status: 404}},
		{"promote wrong method", follower.ts, "GET", "/v1/replication/promote", want{status: 405, allow: str("POST")}},
		// A follower's write routes exist and are POST-only, but POST is
		// the leader's to accept.
		{"follower write GET", follower.ts, "GET", "/v1/graphs/fig1/edges", want{status: 405, allow: str("POST")}},
		{"follower write POST", follower.ts, "POST", "/v1/graphs/fig1/edges", want{status: 503, leader: true}},
		{"follower triples POST", follower.ts, "POST", "/v1/graphs/fig1/triples", want{status: 503, leader: true}},
		// The fleet admin routes (fence exchange, adopt, per-graph promote,
		// drop) exist only on nodes wired for them — everywhere else the
		// resource is absent, so 404 beats method, same as node promote.
		{"fence on non-fencing node", leader.ts, "POST", "/v1/replication/fence", want{status: 404}},
		{"fence wrong method non-fencing", leader.ts, "GET", "/v1/replication/fence", want{status: 404}},
		{"adopt without adopter", leader.ts, "POST", "/v1/replication/fig1/adopt", want{status: 404}},
		{"graph promote without adopter", leader.ts, "POST", "/v1/replication/fig1/promote", want{status: 404}},
		{"graph promote unknown graph", leader.ts, "POST", "/v1/replication/nope/promote", want{status: 404}},
		{"drop without adopter", leader.ts, "DELETE", "/v1/graphs/fig1", want{status: 404}},
	}
	// On a node that IS wired for fleet admin, the routes follow the
	// ordinary method discipline with accurate Allow sets.
	fleetReg := NewRegistry()
	if err := fleetReg.EnableFencing(""); err != nil {
		t.Fatal(err)
	}
	if err := fleetReg.Add("held", fig1.Graph()); err != nil {
		t.Fatal(err)
	}
	fleetSrv := New(fleetReg)
	fleetSrv.OnAdopt = func(string, string) error { return nil }
	fleetSrv.OnGraphPromote = func(string) error { return nil }
	fleetSrv.OnDrop = func(string) error { return nil }
	fleetTS := httptest.NewServer(fleetSrv)
	t.Cleanup(fleetTS.Close)
	cases = append(cases, []struct {
		name   string
		ts     *httptest.Server
		method string
		path   string
		want   want
	}{
		{"fence wrong method", fleetTS, "GET", "/v1/replication/fence", want{status: 405, allow: str("POST")}},
		{"adopt wrong method", fleetTS, "GET", "/v1/replication/held/adopt", want{status: 405, allow: str("POST")}},
		{"graph promote wrong method", fleetTS, "GET", "/v1/replication/held/promote", want{status: 405, allow: str("POST")}},
		{"drop unknown graph", fleetTS, "DELETE", "/v1/graphs/nope", want{status: 404}},
		{"drop wrong method", fleetTS, "PUT", "/v1/graphs/held", want{status: 405, allow: str("DELETE")}},
	}...)
	for _, tc := range cases {
		req, err := http.NewRequest(tc.method, tc.ts.URL+tc.path, strings.NewReader("{}"))
		if err != nil {
			t.Fatal(err)
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != tc.want.status {
			t.Errorf("%s: %s %s = %d, want %d", tc.name, tc.method, tc.path, resp.StatusCode, tc.want.status)
		}
		if tc.want.allow != nil {
			allow, present := resp.Header["Allow"]
			if !present || len(allow) != 1 || allow[0] != *tc.want.allow {
				t.Errorf("%s: Allow = %v (present %v), want %q", tc.name, allow, present, *tc.want.allow)
			}
		}
		if tc.want.leader {
			if got := resp.Header.Get(leaderHeader); got != leader.ts.URL {
				t.Errorf("%s: %s = %q, want %q", tc.name, leaderHeader, got, leader.ts.URL)
			}
		}
	}
}

// BenchmarkFollowerCatchup measures a cold follower: bootstrap from the
// leader's origin checkpoint plus tail-follow of a 100-batch WAL, to the
// moment the follower has published the leader's epoch.
func BenchmarkFollowerCatchup(b *testing.B) {
	root := b.TempDir()
	leader := startDurable(b, "", filepath.Join(root, "leader-wal"))
	const batches = 100
	for i := 0; i < batches; i++ {
		body := fmt.Sprintf(`{"edges":[{"from":"Film %03d","rel":"Genres","from_type":%q,"to_type":%q,"to":"Action Film"}]}`,
			i, fig1.Film, fig1.FilmGenre)
		postBatch(b, leader.ts, "edges", body)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		reg := NewRegistry()
		f, err := StartFollower(reg, "fig1", FollowerOptions{
			Leader: leader.ts.URL,
			Walk:   score.DefaultWalkOptions(),
			Wait:   150 * time.Millisecond,
		})
		if err != nil {
			b.Fatal(err)
		}
		if err := f.WaitCaughtUp(batches, 60*time.Second); err != nil {
			b.Fatal(err)
		}
		f.Stop()
	}
}
