package render_test

import (
	"bytes"
	"strings"
	"testing"

	"github.com/uta-db/previewtables/internal/core"
	"github.com/uta-db/previewtables/internal/fig1"
	"github.com/uta-db/previewtables/internal/graph"
	"github.com/uta-db/previewtables/internal/render"
	"github.com/uta-db/previewtables/internal/score"
)

func fig2Preview(t *testing.T) (*graph.EntityGraph, core.Preview) {
	t.Helper()
	g := fig1.Graph()
	set := score.Compute(g, score.DefaultWalkOptions())
	d := core.New(set, core.Options{Key: score.KeyCoverage, NonKey: score.NonKeyCoverage})
	p, err := d.Discover(core.Constraint{K: 2, N: 6, Mode: core.Concise})
	if err != nil {
		t.Fatal(err)
	}
	return g, p
}

func TestTableRendering(t *testing.T) {
	g, p := fig2Preview(t)
	var buf bytes.Buffer
	if err := render.Table(&buf, g, &p.Tables[0], render.Options{Tuples: 4}); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "FILM") {
		t.Errorf("missing key header:\n%s", out)
	}
	if !strings.Contains(out, "====") {
		t.Errorf("key attribute not underlined with '=':\n%s", out)
	}
	// The FILM table with all four films includes Hancock, whose Genres
	// cell (if the Genres column was chosen) is empty.
	if !strings.Contains(out, "Men in Black") {
		t.Errorf("expected sampled tuples:\n%s", out)
	}
}

func TestMultiValuedAndEmptyCells(t *testing.T) {
	g := fig1.Graph()
	s := g.Schema()
	film, _ := g.TypeByName(fig1.Film)
	var tb core.Table
	tb.Key = film
	for _, inc := range s.Incident(film) {
		name := s.RelType(inc.Rel).Name
		if name == fig1.RelGenres || name == fig1.RelDirector {
			tb.NonKeys = append(tb.NonKeys, core.Candidate{Inc: inc})
		}
	}
	var buf bytes.Buffer
	if err := render.Table(&buf, g, &tb, render.Options{Tuples: 4}); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "{") {
		t.Errorf("multi-valued cell not braced:\n%s", out)
	}
	if !strings.Contains(out, "-") {
		t.Errorf("empty cell not rendered as '-':\n%s", out)
	}
	// Incoming attribute annotated with its source type.
	if !strings.Contains(out, "Director (of FILM DIRECTOR)") {
		t.Errorf("incoming attribute header missing direction:\n%s", out)
	}
}

func TestPreviewRendering(t *testing.T) {
	g, p := fig2Preview(t)
	var buf bytes.Buffer
	if err := render.Preview(&buf, g, &p, render.Options{Tuples: 2}); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "2 tables") {
		t.Errorf("preview header missing:\n%s", out)
	}
	if strings.Count(out, "====") < 1 {
		t.Errorf("tables missing:\n%s", out)
	}
}

func TestRenderDeterministicWithNilRand(t *testing.T) {
	g, p := fig2Preview(t)
	var a, b bytes.Buffer
	if err := render.Preview(&a, g, &p, render.Options{Tuples: 3}); err != nil {
		t.Fatal(err)
	}
	if err := render.Preview(&b, g, &p, render.Options{Tuples: 3}); err != nil {
		t.Fatal(err)
	}
	if a.String() != b.String() {
		t.Error("default rendering not deterministic")
	}
}

func TestRepresentativeOption(t *testing.T) {
	g, p := fig2Preview(t)
	var buf bytes.Buffer
	if err := render.Table(&buf, g, &p.Tables[0], render.Options{Tuples: 3, Representative: true}); err != nil {
		t.Fatal(err)
	}
	if len(strings.Split(strings.TrimSpace(buf.String()), "\n")) != 5 {
		t.Errorf("want header + separator + 3 rows:\n%s", buf.String())
	}
}

func TestCellClipping(t *testing.T) {
	// A narrow width forces the multi-valued Genres cell ("{Action Film,
	// Science Fiction}") to be truncated with an ellipsis.
	g := fig1.Graph()
	s := g.Schema()
	film, _ := g.TypeByName(fig1.Film)
	var tb core.Table
	tb.Key = film
	for _, inc := range s.Incident(film) {
		if s.RelType(inc.Rel).Name == fig1.RelGenres {
			tb.NonKeys = append(tb.NonKeys, core.Candidate{Inc: inc})
		}
	}
	var buf bytes.Buffer
	if err := render.Table(&buf, g, &tb, render.Options{Tuples: 4, MaxCellWidth: 10}); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "…") {
		t.Errorf("long cell not clipped with ellipsis:\n%s", out)
	}
	if strings.Contains(out, "Science Fiction}") {
		t.Errorf("cell exceeded MaxCellWidth:\n%s", out)
	}
}

func TestMarkdownTable(t *testing.T) {
	g, p := fig2Preview(t)
	var buf bytes.Buffer
	if err := render.MarkdownTable(&buf, g, &p.Tables[0], render.Options{Tuples: 2}); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "| **FILM** |") {
		t.Errorf("markdown key header missing:\n%s", out)
	}
	if !strings.Contains(out, "|---|") {
		t.Errorf("markdown separator missing:\n%s", out)
	}
}

func TestSchemaDOT(t *testing.T) {
	g := fig1.Graph()
	var buf bytes.Buffer
	if err := render.SchemaDOT(&buf, g.Schema()); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "digraph schema {") || !strings.Contains(out, `label="Actor"`) {
		t.Errorf("DOT output malformed:\n%s", out)
	}
	if !strings.Contains(out, `label="FILM ACTOR"`) {
		t.Errorf("type labels missing:\n%s", out)
	}
}

func TestPreviewDOT(t *testing.T) {
	g, p := fig2Preview(t)
	var buf bytes.Buffer
	if err := render.PreviewDOT(&buf, g.Schema(), &p); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "doubleoctagon") {
		t.Errorf("key attributes not highlighted:\n%s", out)
	}
	if !strings.Contains(out, "style=bold") {
		t.Errorf("chosen relationships not bold:\n%s", out)
	}
	if !strings.Contains(out, "style=dashed") {
		t.Errorf("unchosen relationships not dashed:\n%s", out)
	}
}
