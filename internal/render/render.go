// Package render turns previews into human-readable artifacts: plain-text
// preview tables in the style of the paper's Fig. 2 (key attribute
// underlined by convention of an ASCII marker row, sampled tuples,
// multi-valued cells in braces, empty cells as "-"), Markdown variants for
// documentation, and Graphviz DOT output of schema graphs in the style of
// Fig. 3.
package render

import (
	"fmt"
	"io"
	"math/rand"
	"sort"
	"strings"

	"github.com/uta-db/previewtables/internal/core"
	"github.com/uta-db/previewtables/internal/graph"
)

// Options controls preview rendering.
type Options struct {
	// Tuples is the number of sample tuples per table (0 renders schema
	// rows only). The paper displays "a few randomly sampled tuples".
	Tuples int
	// Representative selects coverage-greedy tuples instead of random ones
	// (the future-work extension).
	Representative bool
	// Rand drives random sampling; nil uses a fixed seed for deterministic
	// output.
	Rand *rand.Rand
	// MaxCellWidth truncates long cells (0 = 40).
	MaxCellWidth int
}

func (o Options) withDefaults() Options {
	if o.MaxCellWidth <= 0 {
		o.MaxCellWidth = 40
	}
	if o.Rand == nil {
		o.Rand = rand.New(rand.NewSource(1))
	}
	return o
}

// ColumnHeader names a non-key attribute column: the relationship surface
// name, annotated with its direction when the relationship is incoming
// (edges from and to an entity are both preview-table attributes, and two
// relationship types may share a surface name).
func ColumnHeader(s *graph.Schema, c core.Candidate) string {
	rt := s.RelType(c.Inc.Rel)
	if c.Inc.Outgoing {
		return rt.Name
	}
	return rt.Name + " (of " + s.TypeName(rt.From) + ")"
}

// Table renders one preview table as text.
func Table(w io.Writer, g *graph.EntityGraph, t *core.Table, opts Options) error {
	opts = opts.withDefaults()
	s := g.Schema()

	headers := make([]string, 0, len(t.NonKeys)+1)
	headers = append(headers, g.TypeName(t.Key))
	for _, c := range t.NonKeys {
		headers = append(headers, ColumnHeader(s, c))
	}

	tuples := sampleTuples(g, t, opts)
	rows := make([][]string, 0, len(tuples))
	for _, tu := range tuples {
		row := make([]string, 0, len(headers))
		row = append(row, clip(g.EntityName(tu.Key), opts.MaxCellWidth))
		for _, vals := range tu.Values {
			row = append(row, clip(formatCell(g, vals), opts.MaxCellWidth))
		}
		rows = append(rows, row)
	}
	return writeGrid(w, headers, rows, true)
}

// Preview renders a whole preview: every table, separated by blank lines,
// headed by the preview score.
func Preview(w io.Writer, g *graph.EntityGraph, p *core.Preview, opts Options) error {
	fmt.Fprintf(w, "preview: %d tables, %d non-key attributes, score %.4g\n\n",
		len(p.Tables), p.NonKeyCount(), p.Score)
	for i := range p.Tables {
		if i > 0 {
			fmt.Fprintln(w)
		}
		if err := Table(w, g, &p.Tables[i], opts); err != nil {
			return err
		}
	}
	return nil
}

// sampleTuples materializes a table's display tuples per opts: none,
// random (the paper's strategy), or coverage-greedy representative. The
// single sampling point for every renderer, so text, Markdown and JSON
// output cannot diverge for identical options.
func sampleTuples(g *graph.EntityGraph, t *core.Table, opts Options) []core.Tuple {
	if opts.Tuples <= 0 {
		return nil
	}
	if opts.Representative {
		return core.SampleRepresentative(g, t, opts.Tuples)
	}
	return core.SampleRandom(g, t, opts.Tuples, opts.Rand)
}

// formatCell renders a value set: "-" when empty, the bare name for a
// single value, "{a, b}" for multi-valued cells (Fig. 2).
func formatCell(g *graph.EntityGraph, vals []graph.EntityID) string {
	switch len(vals) {
	case 0:
		return "-"
	case 1:
		return g.EntityName(vals[0])
	}
	names := make([]string, len(vals))
	for i, v := range vals {
		names[i] = g.EntityName(v)
	}
	sort.Strings(names)
	return "{" + strings.Join(names, ", ") + "}"
}

func clip(s string, max int) string {
	if len(s) <= max {
		return s
	}
	if max <= 1 {
		return s[:max]
	}
	return s[:max-1] + "…"
}

// writeGrid renders an aligned text grid. When underlineKey is set, the
// separator under the first column uses '=' — the ASCII stand-in for the
// paper's underlined key attribute.
func writeGrid(w io.Writer, headers []string, rows [][]string, underlineKey bool) error {
	widths := make([]int, len(headers))
	for i, h := range headers {
		widths[i] = len([]rune(h))
	}
	for _, row := range rows {
		for i, cell := range row {
			if n := len([]rune(cell)); i < len(widths) && n > widths[i] {
				widths[i] = n
			}
		}
	}
	line := func(cells []string) error {
		parts := make([]string, len(cells))
		for i, c := range cells {
			parts[i] = pad(c, widths[i])
		}
		_, err := fmt.Fprintln(w, strings.TrimRight(strings.Join(parts, "  "), " "))
		return err
	}
	if err := line(headers); err != nil {
		return err
	}
	seps := make([]string, len(headers))
	for i := range seps {
		ch := "-"
		if underlineKey && i == 0 {
			ch = "="
		}
		seps[i] = strings.Repeat(ch, widths[i])
	}
	if err := line(seps); err != nil {
		return err
	}
	for _, row := range rows {
		if err := line(row); err != nil {
			return err
		}
	}
	return nil
}

func pad(s string, w int) string {
	n := len([]rune(s))
	if n >= w {
		return s
	}
	return s + strings.Repeat(" ", w-n)
}

// MarkdownTable renders one preview table as GitHub-flavored Markdown with
// the key attribute bolded.
func MarkdownTable(w io.Writer, g *graph.EntityGraph, t *core.Table, opts Options) error {
	opts = opts.withDefaults()
	s := g.Schema()
	fmt.Fprintf(w, "| **%s** |", g.TypeName(t.Key))
	for _, c := range t.NonKeys {
		fmt.Fprintf(w, " %s |", ColumnHeader(s, c))
	}
	fmt.Fprintln(w)
	fmt.Fprint(w, "|---|")
	for range t.NonKeys {
		fmt.Fprint(w, "---|")
	}
	fmt.Fprintln(w)
	for _, tu := range sampleTuples(g, t, opts) {
		fmt.Fprintf(w, "| %s |", escapeMD(g.EntityName(tu.Key)))
		for _, vals := range tu.Values {
			fmt.Fprintf(w, " %s |", escapeMD(formatCell(g, vals)))
		}
		fmt.Fprintln(w)
	}
	return nil
}

// MarkdownPreview renders every table of a preview as Markdown,
// separated by blank lines — the multi-table counterpart of
// MarkdownTable, as Preview is of Table.
func MarkdownPreview(w io.Writer, g *graph.EntityGraph, p *core.Preview, opts Options) error {
	for i := range p.Tables {
		if i > 0 {
			fmt.Fprintln(w)
		}
		if err := MarkdownTable(w, g, &p.Tables[i], opts); err != nil {
			return err
		}
	}
	return nil
}

// SchemaDOT writes the schema graph as Graphviz DOT (Fig. 3 style):
// entity types as boxes, relationship types as labeled directed edges.
func SchemaDOT(w io.Writer, s *graph.Schema) error {
	fmt.Fprintln(w, "digraph schema {")
	fmt.Fprintln(w, "  rankdir=LR;")
	fmt.Fprintln(w, "  node [shape=box];")
	for i := 0; i < s.NumTypes(); i++ {
		fmt.Fprintf(w, "  t%d [label=%q];\n", i, s.TypeName(graph.TypeID(i)))
	}
	for i := 0; i < s.NumRelTypes(); i++ {
		rt := s.RelType(graph.RelTypeID(i))
		fmt.Fprintf(w, "  t%d -> t%d [label=%q];\n", rt.From, rt.To, rt.Name)
	}
	_, err := fmt.Fprintln(w, "}")
	return err
}

// PreviewDOT writes the schema graph with the preview's star subgraphs
// highlighted: key attributes doubled, chosen non-key relationships bold.
func PreviewDOT(w io.Writer, s *graph.Schema, p *core.Preview) error {
	keyed := map[graph.TypeID]bool{}
	chosen := map[graph.RelTypeID]bool{}
	for _, t := range p.Tables {
		keyed[t.Key] = true
		for _, c := range t.NonKeys {
			chosen[c.Inc.Rel] = true
		}
	}
	fmt.Fprintln(w, "digraph preview {")
	fmt.Fprintln(w, "  rankdir=LR;")
	for i := 0; i < s.NumTypes(); i++ {
		shape := "box"
		if keyed[graph.TypeID(i)] {
			shape = "doubleoctagon"
		}
		fmt.Fprintf(w, "  t%d [label=%q, shape=%s];\n", i, s.TypeName(graph.TypeID(i)), shape)
	}
	for i := 0; i < s.NumRelTypes(); i++ {
		rt := s.RelType(graph.RelTypeID(i))
		style := "dashed"
		if chosen[graph.RelTypeID(i)] {
			style = "bold"
		}
		fmt.Fprintf(w, "  t%d -> t%d [label=%q, style=%s];\n", rt.From, rt.To, rt.Name, style)
	}
	_, err := fmt.Fprintln(w, "}")
	return err
}

func escapeMD(s string) string {
	return strings.NewReplacer("|", "\\|", "\n", " ").Replace(s)
}
