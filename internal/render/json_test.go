package render

import (
	"encoding/json"
	"strings"
	"testing"

	"github.com/uta-db/previewtables/internal/core"
	"github.com/uta-db/previewtables/internal/fig1"
	"github.com/uta-db/previewtables/internal/score"
)

func fig1Preview(t *testing.T, c core.Constraint) (*core.Preview, *core.Discoverer) {
	t.Helper()
	g := fig1.Graph()
	set := score.Compute(g, score.DefaultWalkOptions())
	d := core.New(set, core.Options{Key: score.KeyCoverage, NonKey: score.NonKeyCoverage})
	p, err := d.Discover(c)
	if err != nil {
		t.Fatal(err)
	}
	return &p, d
}

func TestPreviewDocument(t *testing.T) {
	g := fig1.Graph()
	p, _ := fig1Preview(t, core.Constraint{K: 2, N: 3})
	doc := PreviewDocument(g, p, Options{Tuples: 4})

	if doc.Score != p.Score || doc.NonKeyCount != p.NonKeyCount() {
		t.Fatalf("doc totals %g/%d, want %g/%d", doc.Score, doc.NonKeyCount, p.Score, p.NonKeyCount())
	}
	if len(doc.Tables) != 2 {
		t.Fatalf("got %d tables, want 2", len(doc.Tables))
	}
	// Fig. 2's first table: FILM keyed, with the Actor and Genres columns.
	ft := doc.Tables[0]
	if ft.Key != fig1.Film {
		t.Fatalf("first table key %q, want %q", ft.Key, fig1.Film)
	}
	if len(ft.Columns) != 2 || ft.Columns[0].Rel != fig1.RelActor || ft.Columns[1].Rel != fig1.RelGenres {
		t.Fatalf("first table columns: %+v", ft.Columns)
	}
	// The Actor relationship points at FILM, so as a FILM column it is
	// incoming and the header carries the direction annotation.
	if ft.Columns[0].Outgoing || !strings.Contains(ft.Columns[0].Name, fig1.FilmActor) {
		t.Fatalf("Actor column: %+v", ft.Columns[0])
	}
	if ft.Columns[0].Target != fig1.FilmActor {
		t.Fatalf("Actor column target %q, want %q", ft.Columns[0].Target, fig1.FilmActor)
	}
	if len(ft.Tuples) == 0 {
		t.Fatal("no tuples despite Tuples: 4")
	}
	for _, tu := range ft.Tuples {
		if len(tu.Values) != len(ft.Columns) {
			t.Fatalf("tuple %q has %d value sets for %d columns", tu.Key, len(tu.Values), len(ft.Columns))
		}
	}
}

// TestTableDocumentValuesSorted pins the deterministic ordering of
// multi-valued cells.
func TestTableDocumentValuesSorted(t *testing.T) {
	g := fig1.Graph()
	p, _ := fig1Preview(t, core.Constraint{K: 1, N: 2})
	doc := TableDocument(g, &p.Tables[0], Options{Tuples: 100})
	for _, tu := range doc.Tuples {
		for _, vals := range tu.Values {
			for i := 1; i < len(vals); i++ {
				if vals[i-1] > vals[i] {
					t.Fatalf("tuple %q values unsorted: %v", tu.Key, vals)
				}
			}
		}
	}
}

// TestDocJSONShape pins the wire field names — the service API contract.
func TestDocJSONShape(t *testing.T) {
	g := fig1.Graph()
	p, _ := fig1Preview(t, core.Constraint{K: 1, N: 1})
	raw, err := json.Marshal(PreviewDocument(g, p, Options{Tuples: 1}))
	if err != nil {
		t.Fatal(err)
	}
	for _, field := range []string{
		`"score"`, `"non_key_count"`, `"tables"`, `"key"`, `"key_score"`,
		`"columns"`, `"name"`, `"rel"`, `"target"`, `"outgoing"`, `"tuples"`, `"values"`,
	} {
		if !strings.Contains(string(raw), field) {
			t.Errorf("marshaled doc missing %s: %s", field, raw)
		}
	}
}

// TestTableDocumentNoTuples checks the schema-only form omits tuples.
func TestTableDocumentNoTuples(t *testing.T) {
	g := fig1.Graph()
	p, _ := fig1Preview(t, core.Constraint{K: 1, N: 1})
	raw, err := json.Marshal(TableDocument(g, &p.Tables[0], Options{}))
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(string(raw), `"tuples"`) {
		t.Fatalf("schema-only doc carries tuples: %s", raw)
	}
}

// TestGraphStatsDocShape pins the stats document wire shape: static
// graphs serialize neither mutability nor epoch; mutable graphs carry
// both, including the explicit epoch 0 of a freshly loaded graph.
func TestGraphStatsDocShape(t *testing.T) {
	st := fig1.Graph().Stats()
	static, err := json.Marshal(GraphStats("g", st))
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(string(static), "epoch") || strings.Contains(string(static), "mutable") {
		t.Fatalf("static stats leak mutability fields: %s", static)
	}
	live, err := json.Marshal(GraphStats("g", st).WithEpoch(0))
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{`"mutable":true`, `"epoch":0`, `"entities":`} {
		if !strings.Contains(string(live), want) {
			t.Fatalf("mutable stats missing %s: %s", want, live)
		}
	}
}
