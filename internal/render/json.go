// JSON documents. The text and Markdown renderers target terminals and
// docs; services need the same preview content as structured data. The
// *Doc types are the wire representation served by internal/service and
// re-exported from the root package: names instead of internal IDs, column
// headers disambiguated exactly like the text renderer, and deterministic
// value ordering so responses are stable across runs.

package render

import (
	"sort"

	"github.com/uta-db/previewtables/internal/core"
	"github.com/uta-db/previewtables/internal/graph"
)

// GraphStatsDoc is the JSON shape of one graph's size statistics (the
// paper's Table 2 row), plus the serving-layer mutability metadata: a
// graph registered for live updates reports Mutable and its current
// mutation Epoch. Epoch is a pointer so epoch 0 — the freshly loaded
// state of a mutable graph — still serializes, while immutable graphs
// omit both fields.
type GraphStatsDoc struct {
	Name     string      `json:"name"`
	Entities int         `json:"entities"`
	Edges    int         `json:"edges"`
	Types    int         `json:"types"`
	RelTypes int         `json:"rel_types"`
	Mutable  bool        `json:"mutable,omitempty"`
	Epoch    *uint64     `json:"epoch,omitempty"`
	Anytime  *AnytimeDoc `json:"anytime,omitempty"`
}

// AnytimeDoc reports anytime-discovery convergence for a mutable graph:
// whether background refinement has caught up with the current epoch,
// and the last epoch it finished refining. Present only on graphs that
// have served at least one anytime request.
type AnytimeDoc struct {
	Converged    bool   `json:"converged"`
	RefinedEpoch uint64 `json:"refined_epoch"`
}

// GraphStats builds the stats document for an immutable graph.
func GraphStats(name string, st graph.Stats) GraphStatsDoc {
	return GraphStatsDoc{
		Name:     name,
		Entities: st.Entities,
		Edges:    st.Edges,
		Types:    st.Types,
		RelTypes: st.RelTypes,
	}
}

// WithEpoch marks the document as describing a mutable graph at the given
// mutation epoch.
func (d GraphStatsDoc) WithEpoch(epoch uint64) GraphStatsDoc {
	d.Mutable = true
	d.Epoch = &epoch
	return d
}

// WithAnytime attaches anytime-convergence state: whether background
// refinement has converged on the document's epoch, and the last refined
// epoch.
func (d GraphStatsDoc) WithAnytime(converged bool, refinedEpoch uint64) GraphStatsDoc {
	d.Anytime = &AnytimeDoc{Converged: converged, RefinedEpoch: refinedEpoch}
	return d
}

// PreviewDoc is a JSON-friendly preview: Eq. 1's score plus one TableDoc
// per preview table.
type PreviewDoc struct {
	Score       float64    `json:"score"`
	NonKeyCount int        `json:"non_key_count"`
	Tables      []TableDoc `json:"tables"`
}

// TableDoc is a JSON-friendly preview table: the key attribute (entity
// type) with its score S(τ), the chosen non-key columns, the table score
// S(T) of Eq. 2, and optionally sampled tuples.
type TableDoc struct {
	Key      string      `json:"key"`
	KeyScore float64     `json:"key_score"`
	Score    float64     `json:"score"`
	Columns  []ColumnDoc `json:"columns"`
	Tuples   []TupleDoc  `json:"tuples,omitempty"`
}

// ColumnDoc is one non-key attribute of a table: the display header (as in
// the text renderer, annotated with direction when the relationship is
// incoming), the raw relationship surface name, the entity type at the
// other end, the orientation, and the non-key score Sτ(γ).
type ColumnDoc struct {
	Name     string  `json:"name"`
	Rel      string  `json:"rel"`
	Target   string  `json:"target"`
	Outgoing bool    `json:"outgoing"`
	Score    float64 `json:"score"`
}

// TupleDoc is one materialized row: the key entity's name and, aligned
// with the table's columns, the related entity names (empty slice for an
// empty cell, multiple names — sorted — for a multi-valued cell).
type TupleDoc struct {
	Key    string     `json:"key"`
	Values [][]string `json:"values"`
}

// PreviewDocument builds the JSON document for a whole preview. Tuple
// sampling follows opts exactly as the text renderer does.
func PreviewDocument(g *graph.EntityGraph, p *core.Preview, opts Options) PreviewDoc {
	doc := PreviewDoc{
		Score:       p.Score,
		NonKeyCount: p.NonKeyCount(),
		Tables:      make([]TableDoc, len(p.Tables)),
	}
	for i := range p.Tables {
		doc.Tables[i] = TableDocument(g, &p.Tables[i], opts)
	}
	return doc
}

// TableDocument builds the JSON document for one preview table.
func TableDocument(g *graph.EntityGraph, t *core.Table, opts Options) TableDoc {
	opts = opts.withDefaults()
	s := g.Schema()
	doc := TableDoc{
		Key:      g.TypeName(t.Key),
		KeyScore: t.KeyScore,
		Score:    t.Score,
		Columns:  make([]ColumnDoc, len(t.NonKeys)),
	}
	for i, c := range t.NonKeys {
		rt := s.RelType(c.Inc.Rel)
		doc.Columns[i] = ColumnDoc{
			Name:     ColumnHeader(s, c),
			Rel:      rt.Name,
			Target:   s.TypeName(s.OtherEnd(c.Inc)),
			Outgoing: c.Inc.Outgoing,
			Score:    c.Score,
		}
	}
	if tuples := sampleTuples(g, t, opts); len(tuples) > 0 {
		doc.Tuples = make([]TupleDoc, len(tuples))
		for i, tu := range tuples {
			doc.Tuples[i] = tupleDoc(g, tu)
		}
	}
	return doc
}

func tupleDoc(g *graph.EntityGraph, tu core.Tuple) TupleDoc {
	d := TupleDoc{Key: g.EntityName(tu.Key), Values: make([][]string, len(tu.Values))}
	for i, vals := range tu.Values {
		names := make([]string, len(vals))
		for j, v := range vals {
			names[j] = g.EntityName(v)
		}
		sort.Strings(names)
		d.Values[i] = names
	}
	return d
}
