package previewtables_test

// Benchmark harness: one benchmark per table and figure of the paper's
// evaluation (regenerating the artifact end to end), plus ablation
// benchmarks for the design decisions called out in DESIGN.md and
// micro-benchmarks of the core substrate.
//
// Domains are generated once per process at a laptop-friendly scale and
// shared; `go test -bench=. -benchmem` therefore measures computation, not
// data generation (except in the generation benchmarks themselves).

import (
	"bytes"
	"fmt"
	"math/rand"
	"sync"
	"testing"

	"github.com/uta-db/previewtables/internal/core"
	"github.com/uta-db/previewtables/internal/dynamic"
	"github.com/uta-db/previewtables/internal/experiments"
	"github.com/uta-db/previewtables/internal/freebase"
	"github.com/uta-db/previewtables/internal/graph"
	"github.com/uta-db/previewtables/internal/par"
	"github.com/uta-db/previewtables/internal/score"
	"github.com/uta-db/previewtables/internal/storage"
	"github.com/uta-db/previewtables/internal/study"
	"github.com/uta-db/previewtables/internal/triple"
	"github.com/uta-db/previewtables/internal/yps09"
)

var benchGen = freebase.GenOptions{Scale: 2e-4, Seed: 77, MinEntities: 800, MinEdges: 4000}

var (
	benchOnce   sync.Once
	benchRunner *experiments.Runner
	benchGraphs map[string]*graph.EntityGraph
	benchDiscs  map[string]*core.Discoverer
)

func benchSetup(b *testing.B) (*experiments.Runner, map[string]*graph.EntityGraph, map[string]*core.Discoverer) {
	b.Helper()
	benchOnce.Do(func() {
		benchRunner = experiments.New(experiments.Config{
			Gen:                 benchGen,
			Seed:                77,
			Repeats:             1,
			BFSubsetCap:         5e5,
			AprioriCandidateCap: 5e5,
		})
		benchGraphs = map[string]*graph.EntityGraph{}
		benchDiscs = map[string]*core.Discoverer{}
		for _, domain := range freebase.Domains() {
			g, err := freebase.Generate(domain, benchGen)
			if err != nil {
				panic(err)
			}
			benchGraphs[domain] = g
			set := score.Compute(g, score.DefaultWalkOptions())
			benchDiscs[domain] = core.New(set, core.Options{Key: score.KeyCoverage, NonKey: score.NonKeyCoverage})
		}
	})
	return benchRunner, benchGraphs, benchDiscs
}

func runTable(b *testing.B, f func() (*experiments.Table, error)) {
	b.Helper()
	t, err := f()
	if err != nil {
		b.Fatal(err)
	}
	if len(t.Rows) == 0 {
		b.Fatal("empty table")
	}
}

func runFigure(b *testing.B, f func() (*experiments.Figure, error)) {
	b.Helper()
	fig, err := f()
	if err != nil {
		b.Fatal(err)
	}
	if len(fig.Panels) == 0 {
		b.Fatal("empty figure")
	}
}

// --- One benchmark per paper table/figure -------------------------------

func BenchmarkTable2_DomainGeneration(b *testing.B) {
	for i := 0; i < b.N; i++ {
		for _, domain := range freebase.Domains() {
			if _, err := freebase.Generate(domain, benchGen); err != nil {
				b.Fatal(err)
			}
		}
	}
}

func BenchmarkTable3_NonKeyMRR(b *testing.B) {
	r, _, _ := benchSetup(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		runTable(b, r.Table3)
	}
}

func BenchmarkTable4_CrowdPCC(b *testing.B) {
	r, _, _ := benchSetup(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		runTable(b, r.Table4)
	}
}

func BenchmarkFigure5_KeyPrecisionAtK(b *testing.B) {
	r, _, _ := benchSetup(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		runFigure(b, r.Figure5)
	}
}

func BenchmarkFigure6_KeyAvgP(b *testing.B) {
	r, _, _ := benchSetup(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		runFigure(b, r.Figure6)
	}
}

func BenchmarkFigure7_KeyNDCG(b *testing.B) {
	r, _, _ := benchSetup(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		runFigure(b, r.Figure7)
	}
}

// Figure 8's underlying algorithm invocations, one sub-benchmark per curve
// point family: brute force vs dynamic programming on concise previews.
func BenchmarkFigure8_ConciseDiscovery(b *testing.B) {
	_, _, discs := benchSetup(b)
	cases := []struct {
		name   string
		domain string
		run    func(d *core.Discoverer) error
	}{
		{"BruteForce/basketball-k5-n10", "basketball", func(d *core.Discoverer) error {
			_, err := d.BruteForce(core.Constraint{K: 5, N: 10, Mode: core.Concise})
			return err
		}},
		{"BruteForce/architecture-k5-n10", "architecture", func(d *core.Discoverer) error {
			_, err := d.BruteForce(core.Constraint{K: 5, N: 10, Mode: core.Concise})
			return err
		}},
		{"BruteForce/music-k4-n10", "music", func(d *core.Discoverer) error {
			_, err := d.BruteForce(core.Constraint{K: 4, N: 10, Mode: core.Concise})
			return err
		}},
		{"DP/music-k5-n10", "music", func(d *core.Discoverer) error {
			_, err := d.DynamicProgramming(core.Constraint{K: 5, N: 10, Mode: core.Concise})
			return err
		}},
		{"DP/music-k9-n20", "music", func(d *core.Discoverer) error {
			_, err := d.DynamicProgramming(core.Constraint{K: 9, N: 20, Mode: core.Concise})
			return err
		}},
	}
	for _, c := range cases {
		b.Run(c.name, func(b *testing.B) {
			d := discs[c.domain]
			for i := 0; i < b.N; i++ {
				if err := c.run(d); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// Figure 9's underlying invocations: brute force vs Apriori on tight and
// diverse previews.
func BenchmarkFigure9_DistanceDiscovery(b *testing.B) {
	_, _, discs := benchSetup(b)
	cases := []struct {
		name   string
		domain string
		c      core.Constraint
		apri   bool
	}{
		{"Apriori/music-tight-k6-d2", "music", core.Constraint{K: 6, N: 16, Mode: core.Tight, D: 2}, true},
		{"Apriori/music-diverse-k5-d4", "music", core.Constraint{K: 5, N: 10, Mode: core.Diverse, D: 4}, true},
		{"Apriori/basketball-tight-k5-d2", "basketball", core.Constraint{K: 5, N: 10, Mode: core.Tight, D: 2}, true},
		{"BruteForce/music-tight-k4-d2", "music", core.Constraint{K: 4, N: 10, Mode: core.Tight, D: 2}, false},
		{"BruteForce/basketball-diverse-k5-d4", "basketball", core.Constraint{K: 5, N: 10, Mode: core.Diverse, D: 4}, false},
	}
	for _, c := range cases {
		b.Run(c.name, func(b *testing.B) {
			d := discs[c.domain]
			for i := 0; i < b.N; i++ {
				var err error
				if c.apri {
					_, err = d.Apriori(c.c)
				} else {
					_, err = d.BruteForce(c.c)
				}
				if err != nil && err != core.ErrNoPreview {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkTable5_StudyConversion(b *testing.B) {
	_, graphs, _ := benchSetup(b)
	g := graphs["music"]
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := study.RunDomain(g, "music", study.Config{Seed: 7}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTable6_MedianTimes(b *testing.B) {
	r, _, _ := benchSetup(b)
	if _, err := r.Table5(); err != nil { // warm the study cache
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		runTable(b, r.Table6)
	}
}

func BenchmarkTable7_PairwiseZ(b *testing.B) {
	r, _, _ := benchSetup(b)
	if _, err := r.Table5(); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		runTable(b, r.Table7)
	}
}

func BenchmarkTables13to16_PairwiseZ(b *testing.B) {
	r, _, _ := benchSetup(b)
	if _, err := r.Table5(); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, domain := range []string{"books", "film", "tv", "people"} {
			runTable(b, func() (*experiments.Table, error) { return r.PairwiseZ(domain) })
		}
	}
}

func BenchmarkFigures10to14_TimeBoxplots(b *testing.B) {
	r, _, _ := benchSetup(b)
	if _, err := r.Table5(); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, domain := range freebase.GoldDomains() {
			runTable(b, func() (*experiments.Table, error) { return r.TimeBoxplots(domain) })
		}
	}
}

func BenchmarkTable8_Questionnaire(b *testing.B) {
	r, _, _ := benchSetup(b)
	for i := 0; i < b.N; i++ {
		runTable(b, r.Table8)
	}
}

func BenchmarkTable9_LikertRanking(b *testing.B) {
	r, _, _ := benchSetup(b)
	for i := 0; i < b.N; i++ {
		runTable(b, r.Table9)
	}
}

func BenchmarkTables17to21_Likert(b *testing.B) {
	r, _, _ := benchSetup(b)
	for i := 0; i < b.N; i++ {
		for _, domain := range freebase.GoldDomains() {
			runTable(b, func() (*experiments.Table, error) { return r.Likert(domain) })
		}
	}
}

func BenchmarkTable10_GoldStandard(b *testing.B) {
	r, _, _ := benchSetup(b)
	for i := 0; i < b.N; i++ {
		runTable(b, r.Table10)
	}
}

func BenchmarkTable11_SamplePreviews(b *testing.B) {
	r, _, _ := benchSetup(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		runTable(b, r.Table11)
	}
}

func BenchmarkTable12_TightDiversePreviews(b *testing.B) {
	r, _, _ := benchSetup(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		runTable(b, r.Table12)
	}
}

func BenchmarkTables22and23_CrossPrecision(b *testing.B) {
	r, _, _ := benchSetup(b)
	for i := 0; i < b.N; i++ {
		runTable(b, r.Tables22and23)
	}
}

// --- Ablation benchmarks (DESIGN.md Sec. 5) ------------------------------

// Apriori level-wise candidate generation vs depth-first clique
// backtracking inside the same optimal tight-preview search.
func BenchmarkAblationCliqueEnumeration(b *testing.B) {
	_, _, discs := benchSetup(b)
	d := discs["music"]
	c := core.Constraint{K: 5, N: 12, Mode: core.Tight, D: 2}
	b.Run("Apriori", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := d.Apriori(c); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("CliqueDFS", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := d.CliqueDFS(c); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// Brute force vs DP on an instance small enough for both to run unaided.
func BenchmarkAblationDPvsBruteForce(b *testing.B) {
	_, _, discs := benchSetup(b)
	d := discs["architecture"]
	c := core.Constraint{K: 5, N: 10, Mode: core.Concise}
	b.Run("BruteForce", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := d.BruteForce(c); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("DP", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := d.DynamicProgramming(c); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// All-pairs distance precomputation vs per-query BFS.
func BenchmarkAblationDistanceMatrix(b *testing.B) {
	_, graphs, _ := benchSetup(b)
	s := graphs["music"].Schema()
	b.Run("Precompute", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			m := s.AllDistances()
			_ = m.Dist(0, graph.TypeID(s.NumTypes()-1))
		}
	})
	b.Run("PerQueryBFS", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			for t := 0; t < s.NumTypes(); t++ {
				_ = s.Distances(graph.TypeID(t))
			}
		}
	})
}

// Cost of the entropy measure (tuple materialization) vs coverage-only
// scoring at Set computation time.
func BenchmarkAblationEntropyCost(b *testing.B) {
	_, graphs, _ := benchSetup(b)
	g := graphs["music"]
	s := g.Schema()
	b.Run("EntropyAllTypes", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			for t := 0; t < s.NumTypes(); t++ {
				for _, inc := range s.Incident(graph.TypeID(t)) {
					_ = score.Entropy(g, graph.TypeID(t), inc)
				}
			}
		}
	})
	b.Run("CoverageAllTypes", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			var sum float64
			for t := 0; t < s.NumTypes(); t++ {
				for _, inc := range s.Incident(graph.TypeID(t)) {
					sum += float64(s.RelType(inc.Rel).EdgeCount)
				}
			}
			_ = sum
		}
	})
}

// --- Substrate micro-benchmarks ------------------------------------------

func BenchmarkScoreComputeMusic(b *testing.B) {
	_, graphs, _ := benchSetup(b)
	g := graphs["music"]
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = score.Compute(g, score.DefaultWalkOptions())
	}
}

func BenchmarkStationaryDistribution(b *testing.B) {
	_, graphs, _ := benchSetup(b)
	s := graphs["music"].Schema()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = score.StationaryDistribution(s, score.DefaultWalkOptions())
	}
}

func BenchmarkYPS09Summarize(b *testing.B) {
	_, graphs, _ := benchSetup(b)
	g := graphs["film"]
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		y := yps09.New(g)
		if _, err := y.Summarize(6); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSnapshotRoundTrip(b *testing.B) {
	_, graphs, _ := benchSetup(b)
	g := graphs["film"]
	var buf bytes.Buffer
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		buf.Reset()
		if err := storage.Write(&buf, g); err != nil {
			b.Fatal(err)
		}
		if _, err := storage.Read(&buf); err != nil {
			b.Fatal(err)
		}
	}
	b.SetBytes(int64(buf.Len()))
}

func BenchmarkTripleMarshal(b *testing.B) {
	_, graphs, _ := benchSetup(b)
	g := graphs["tv"]
	var buf bytes.Buffer
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		buf.Reset()
		if err := triple.Marshal(&buf, g); err != nil {
			b.Fatal(err)
		}
	}
	b.SetBytes(int64(buf.Len()))
}

func BenchmarkSchemaDerivation(b *testing.B) {
	_, graphs, _ := benchSetup(b)
	g := graphs["books"]
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = g.Schema()
	}
}

func BenchmarkStudyPresentationBuild(b *testing.B) {
	_, graphs, _ := benchSetup(b)
	g := graphs["tv"]
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := study.BuildPresentations(g, "tv"); err != nil {
			b.Fatal(err)
		}
	}
}

// Sequential vs parallel brute force on a mid-sized schema.
func BenchmarkAblationParallelBruteForce(b *testing.B) {
	_, _, discs := benchSetup(b)
	d := discs["architecture"]
	c := core.Constraint{K: 5, N: 10, Mode: core.Concise}
	b.Run("Sequential", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := d.BruteForce(c); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("Parallel", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := d.BruteForceParallel(c, 0); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// Incremental score maintenance vs full batch recompute after streaming a
// domain-sized update log.
func BenchmarkAblationIncrementalScores(b *testing.B) {
	_, graphs, _ := benchSetup(b)
	src := graphs["tv"]
	dg, err := dynamic.FromEntityGraph(src)
	if err != nil {
		b.Fatal(err)
	}
	b.Run("IncrementalRefresh", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := dg.Scores(score.DefaultWalkOptions()); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("BatchRecompute", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			_ = score.Compute(src, score.DefaultWalkOptions())
		}
	})
}

// refreshBatchSize is the per-epoch update batch the serving-path
// benchmarks apply: small enough to model a live trickle, large enough
// that batching amortizes the per-refresh fixed costs.
const refreshBatchSize = 16

// BenchmarkIncrementalRefresh is the live write path of internal/dynamic:
// apply one update batch to a warm graph and re-emit the score set
// through the incremental machinery (O(deg) histogram moves already paid
// per edge, O(1) entropy reads, warm-started walk re-solve).
func BenchmarkIncrementalRefresh(b *testing.B) {
	_, graphs, _ := benchSetup(b)
	src := graphs["tv"]
	dg, err := dynamic.FromEntityGraph(src)
	if err != nil {
		b.Fatal(err)
	}
	if _, err := dg.Scores(score.DefaultWalkOptions()); err != nil {
		b.Fatal(err) // warm: steady-state refreshes all start warm
	}
	rng := rand.New(rand.NewSource(99))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for j := 0; j < refreshBatchSize; j++ {
			rel := graph.RelTypeID(rng.Intn(src.NumRelTypes()))
			rt := src.RelType(rel)
			froms := src.EntitiesOfType(rt.From)
			tos := src.EntitiesOfType(rt.To)
			if err := dg.AddEdge(froms[rng.Intn(len(froms))], tos[rng.Intn(len(tos))], rel); err != nil {
				b.Fatal(err)
			}
		}
		if _, err := dg.Scores(score.DefaultWalkOptions()); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFullRecompute is the same single-batch refresh without the
// incremental machinery: rescan the whole entity graph with
// score.Compute, the cost a naive mutable server would pay per batch.
func BenchmarkFullRecompute(b *testing.B) {
	_, graphs, _ := benchSetup(b)
	src := graphs["tv"]
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = score.Compute(src, score.DefaultWalkOptions())
	}
}

// --- Parallel hot paths (BENCH_parallel_hotpaths.json) -------------------

// The parallel benchmarks run on a generated graph at serving scale
// (TargetEntities ≥ 1e5, far beyond the laptop-scale benchGen domains) so
// the worker pools have real work to amortize their coordination against.
// Generated once per process and shared.
var (
	parBenchOnce  sync.Once
	parBenchGraph *graph.EntityGraph
	parBenchSet   *score.Set
)

func parallelBenchSetup(b *testing.B) (*graph.EntityGraph, *score.Set) {
	b.Helper()
	parBenchOnce.Do(func() {
		g, err := freebase.Generate("music", freebase.GenOptions{TargetEntities: 100_000, Seed: 7})
		if err != nil {
			panic(err)
		}
		parBenchGraph = g
		parBenchSet = score.Compute(g, score.DefaultWalkOptions())
	})
	return parBenchGraph, parBenchSet
}

// parBenchWorkers is the pool size of the "parallel" arms: every core, but
// at least two so the pooled code path is exercised (and its coordination
// cost visible) even on a single-core machine.
func parBenchWorkers() int {
	if w := par.Auto(); w > 1 {
		return w
	}
	return 2
}

// BenchmarkParallelScore: the full scoring precomputation — per-type
// entropy and coverage fan-out plus the blocked parallel power iteration —
// sequential vs worker pool. The two arms produce bit-identical Sets
// (TestScoreComputeParallelBitIdentical); this measures the speedup.
func BenchmarkParallelScore(b *testing.B) {
	g, _ := parallelBenchSetup(b)
	for _, workers := range []int{1, parBenchWorkers()} {
		b.Run(fmt.Sprintf("P%d", workers), func(b *testing.B) {
			opts := score.DefaultWalkOptions()
			opts.Parallelism = workers
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				_ = score.Compute(g, opts)
			}
		})
	}
}

// BenchmarkParallelDiscover: exact distance-constrained search at serving
// scale, sequential vs worker pool — the Apriori level-wise search and the
// ground-truth brute force, both returning identical previews at any
// worker count (TestDiscoverDifferential).
func BenchmarkParallelDiscover(b *testing.B) {
	_, set := parallelBenchSetup(b)
	apriori := core.Constraint{K: 5, N: 10, Mode: core.Diverse, D: 2}
	brute := core.Constraint{K: 4, N: 8, Mode: core.Tight, D: 2}
	for _, workers := range []int{1, parBenchWorkers()} {
		d := core.New(set, core.Options{Key: score.KeyCoverage, NonKey: score.NonKeyCoverage, Parallelism: workers})
		b.Run(fmt.Sprintf("Apriori/P%d", workers), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := d.AprioriParallel(apriori, workers); err != nil {
					b.Fatal(err)
				}
			}
		})
		b.Run(fmt.Sprintf("BruteForce/P%d", workers), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				var err error
				if workers == 1 {
					_, err = d.BruteForce(brute)
				} else {
					_, err = d.BruteForceParallel(brute, workers)
				}
				if err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// --- Incremental discovery (BENCH_incremental_refresh.json) --------------

// incrementalBenchEpochs is how many pre-generated write epochs the
// incremental-discovery benchmark cycles through. Each epoch is one
// refreshBatchSize-edge batch against the 100k-entity music graph.
const incrementalBenchEpochs = 32

// benchEpoch is the slice of a published snapshot the discovery layers
// consume — keeping the frozen entity graphs of all pre-generated epochs
// alive would cost hundreds of MB for data the search never reads.
type benchEpoch struct {
	epoch      uint64
	scores     *score.Set
	dirty      []graph.TypeID
	structural bool
}

var (
	incBenchOnce   sync.Once
	incBenchEpochs []benchEpoch
)

// incrementalBenchSetup replays a deterministic write workload against a
// live copy of the parallel benchmark graph: incrementalBenchEpochs
// batches of refreshBatchSize random edges between existing entities
// (epoch 0 is the initial structural publication).
func incrementalBenchSetup(b *testing.B) []benchEpoch {
	b.Helper()
	g, _ := parallelBenchSetup(b)
	incBenchOnce.Do(func() {
		dg, err := dynamic.FromEntityGraph(g)
		if err != nil {
			panic(err)
		}
		live, err := dynamic.NewLive(dg, score.DefaultWalkOptions())
		if err != nil {
			panic(err)
		}
		keep := func(s *dynamic.Snapshot) {
			incBenchEpochs = append(incBenchEpochs, benchEpoch{
				epoch: s.Epoch, scores: s.Scores, dirty: s.Dirty, structural: s.Structural,
			})
		}
		keep(live.Snapshot())
		rng := rand.New(rand.NewSource(7))
		nRels := g.NumRelTypes()
		for i := 0; i < incrementalBenchEpochs; i++ {
			snap, err := live.Apply(func(mg *dynamic.Graph) error {
				for j := 0; j < refreshBatchSize; j++ {
					rel := graph.RelTypeID(rng.Intn(nRels))
					rt := mg.Rel(rel)
					froms := g.EntitiesOfType(rt.From)
					tos := g.EntitiesOfType(rt.To)
					if len(froms) == 0 || len(tos) == 0 {
						continue
					}
					if err := mg.AddEdge(froms[rng.Intn(len(froms))], tos[rng.Intn(len(tos))], rel); err != nil {
						return err
					}
				}
				return nil
			})
			if err != nil {
				panic(err)
			}
			keep(snap)
		}
	})
	return incBenchEpochs
}

// BenchmarkIncrementalDiscover: exact tight/diverse discovery per write
// epoch, cold vs carried-forward. The Cold arm is what serving paid
// before incrementality: a fresh Discoverer and a full Apriori search at
// every epoch. The Incremental arm refreshes a Maintained state with the
// batch's dirty types and serves through the certificate fast path; the
// fullsearch/op metric records how often the top-k boundary forced a
// real re-search (0 = every epoch served from the certificate).
// Both arms return byte-identical previews at every epoch
// (TestMaintainedMatchesColdAcrossEpochs, and the serving-layer
// differential in internal/service).
func BenchmarkIncrementalDiscover(b *testing.B) {
	epochs := incrementalBenchSetup(b)
	c := core.Constraint{K: 5, N: 10, Mode: core.Diverse, D: 2}
	opts := core.Options{Key: score.KeyCoverage, NonKey: score.NonKeyCoverage}

	b.Run("Cold", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			e := epochs[1+i%(len(epochs)-1)]
			d := core.New(e.scores, opts)
			if _, err := d.Discover(c); err != nil {
				b.Fatal(err)
			}
		}
	})

	b.Run("Incremental", func(b *testing.B) {
		b.ReportAllocs()
		var (
			m    *core.Maintained
			base int64 // full searches spent seeding, excluded from the metric
		)
		seed := func() {
			m = core.NewMaintained(opts)
			m.Refresh(epochs[0].scores, epochs[0].epoch, epochs[0].dirty, epochs[0].structural)
			if _, err := m.DiscoverAt(epochs[0].epoch, c); err != nil {
				b.Fatal(err)
			}
			base = m.FullSearches()
		}
		seed()
		var inLoop int64
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if i%(len(epochs)-1) == 0 && i > 0 {
				// Epochs only move forward; re-seed the state (outside the
				// timer) before replaying the sequence.
				b.StopTimer()
				inLoop += m.FullSearches() - base
				seed()
				b.StartTimer()
			}
			e := epochs[1+i%(len(epochs)-1)]
			m.Refresh(e.scores, e.epoch, e.dirty, e.structural)
			if _, err := m.DiscoverAt(e.epoch, c); err != nil {
				b.Fatal(err)
			}
		}
		b.StopTimer()
		inLoop += m.FullSearches() - base
		b.ReportMetric(float64(inLoop)/float64(b.N), "fullsearch/op")
	})
}
