// Package previewtables generates preview tables for entity graphs,
// implementing Yan, Hasani, Asudeh and Li, "Generating Preview Tables for
// Entity Graphs" (SIGMOD 2016).
//
// An entity graph is a directed multigraph of named entities connected by
// typed relationships. A preview is a small set of preview tables — each a
// star-shaped subgraph of the schema graph, with an entity type as its key
// attribute and incident relationship types as non-key attributes — chosen
// to maximize an intuitive goodness score under a display-size constraint
// (k tables, n non-key attributes) and optionally a pairwise table-distance
// constraint (tight previews huddle around one concept; diverse previews
// spread across the schema).
//
// Quick start:
//
//	var b previewtables.Builder
//	film := b.Type("FILM")
//	actor := b.Type("FILM ACTOR")
//	acted := b.RelType("Actor", actor, film)
//	b.Edge(b.Entity("Will Smith"), b.Entity("Men in Black"), acted)
//	g, err := b.Build()
//	// ...
//	p, err := previewtables.Discover(g, previewtables.Constraint{K: 1, N: 2})
//	previewtables.Render(os.Stdout, g, &p, 4)
//
// The heavy lifting lives in internal packages; this package is the stable
// public surface: the data model (Builder, EntityGraph, Schema), the
// scoring measures of the paper's Sec. 3, the three discovery algorithms of
// Sec. 5, loading/saving (text triples, an N-Triples subset, and a binary
// snapshot format), and rendering — aligned text, Markdown, Graphviz DOT,
// and the JSON documents served by the previewd HTTP API.
package previewtables

import (
	"io"
	"math/rand"

	"github.com/uta-db/previewtables/internal/core"
	"github.com/uta-db/previewtables/internal/graph"
	"github.com/uta-db/previewtables/internal/render"
	"github.com/uta-db/previewtables/internal/score"
	"github.com/uta-db/previewtables/internal/storage"
	"github.com/uta-db/previewtables/internal/triple"
)

// Data model (see Sec. 2 of the paper).
type (
	// EntityGraph is the directed entity multigraph Gd(Vd, Ed).
	EntityGraph = graph.EntityGraph
	// Builder incrementally assembles an EntityGraph.
	Builder = graph.Builder
	// Schema is the schema graph Gs(Vs, Es) derived from an entity graph.
	Schema = graph.Schema
	// Stats summarizes entity/schema graph sizes.
	Stats = graph.Stats
	// EntityID identifies an entity.
	EntityID = graph.EntityID
	// TypeID identifies an entity type (schema graph vertex).
	TypeID = graph.TypeID
	// RelTypeID identifies a relationship type (schema graph edge).
	RelTypeID = graph.RelTypeID
)

// Previews and constraints (Secs. 2 and 4).
type (
	// Preview is a set of preview tables with a goodness score.
	Preview = core.Preview
	// PreviewTable is one table: a key attribute plus non-key attributes.
	PreviewTable = core.Table
	// Constraint is the size constraint (k, n) plus the optional distance
	// constraint (Mode, D).
	Constraint = core.Constraint
	// Mode selects the preview space: Concise, Tight or Diverse.
	Mode = core.Mode
	// Tuple is one materialized preview-table row.
	Tuple = core.Tuple
)

// Preview space modes.
const (
	Concise = core.Concise
	Tight   = core.Tight
	Diverse = core.Diverse
)

// Scoring measures (Sec. 3).
type (
	// KeyMeasure scores key attributes (entity types).
	KeyMeasure = score.KeyMeasure
	// NonKeyMeasure scores non-key attributes (relationship types).
	NonKeyMeasure = score.NonKeyMeasure
)

// Available measures.
const (
	KeyCoverage   = score.KeyCoverage
	KeyRandomWalk = score.KeyRandomWalk

	NonKeyCoverage = score.NonKeyCoverage
	NonKeyEntropy  = score.NonKeyEntropy
)

// ErrNoPreview is returned when no preview satisfies the constraints.
var ErrNoPreview = core.ErrNoPreview

// ErrSearchBudget is returned by tight/diverse discovery when
// Constraint.MaxCandidates is set and the exact search would exceed it.
var ErrSearchBudget = core.ErrSearchBudget

// Discoverer precomputes scores for one entity graph and answers optimal
// preview discovery queries. Create one per (graph, measure) pair and reuse
// it across constraints; it is safe for concurrent use.
type Discoverer struct {
	g *EntityGraph
	d *core.Discoverer
}

// NewDiscoverer precomputes the chosen scoring measures over g.
func NewDiscoverer(g *EntityGraph, key KeyMeasure, nonKey NonKeyMeasure) *Discoverer {
	set := score.Compute(g, score.DefaultWalkOptions())
	return &Discoverer{g: g, d: core.New(set, core.Options{Key: key, NonKey: nonKey})}
}

// Discover finds an optimal preview using the algorithm best suited to the
// constraint: dynamic programming (Alg. 2) for concise previews, the
// Apriori-style search (Alg. 3) for tight/diverse previews.
func (d *Discoverer) Discover(c Constraint) (Preview, error) { return d.d.Discover(c) }

// BruteForce finds an optimal preview by exhaustive enumeration (Alg. 1).
// Exponential in c.K; useful for validation and small schemas.
func (d *Discoverer) BruteForce(c Constraint) (Preview, error) { return d.d.BruteForce(c) }

// DynamicProgramming finds an optimal concise preview (Alg. 2).
func (d *Discoverer) DynamicProgramming(c Constraint) (Preview, error) {
	return d.d.DynamicProgramming(c)
}

// Apriori finds an optimal tight/diverse preview (Alg. 3).
func (d *Discoverer) Apriori(c Constraint) (Preview, error) { return d.d.Apriori(c) }

// BruteForceParallel is BruteForce distributed over worker goroutines
// (NumCPU when workers <= 0), with deterministic tie-breaking.
func (d *Discoverer) BruteForceParallel(c Constraint, workers int) (Preview, error) {
	return d.d.BruteForceParallel(c, workers)
}

// AllOptimal enumerates every optimal preview in the constrained space —
// Eq. 3's arg max can return a set due to score ties (the paper's own
// Sec. 4 example has two optima). One preview per tied key-attribute
// subset, in deterministic order; exponential in c.K.
func (d *Discoverer) AllOptimal(c Constraint) ([]Preview, error) { return d.d.AllOptimal(c) }

// SuggestSize derives a (k, n) constraint from a display budget in table
// cells (future-work item 4 of the paper's Sec. 8).
func (d *Discoverer) SuggestSize(budgetCells int) Constraint {
	return core.SuggestSize(d.d.Schema(), budgetCells)
}

// DistanceSuggestion recommends tight/diverse distance bounds for a schema.
type DistanceSuggestion = core.DistanceSuggestion

// SuggestDistance inspects the schema's distance structure and recommends
// tight/diverse bounds (future-work item 1).
func (d *Discoverer) SuggestDistance() DistanceSuggestion {
	return core.SuggestDistanceMode(d.d.Schema())
}

// Discover finds an optimal preview with the paper's default measures
// (coverage for both key and non-key attributes).
func Discover(g *EntityGraph, c Constraint) (Preview, error) {
	return NewDiscoverer(g, KeyCoverage, NonKeyCoverage).Discover(c)
}

// SampleTuples materializes up to count randomly sampled tuples of a
// preview table (the paper's display strategy).
func SampleTuples(g *EntityGraph, t *PreviewTable, count int, rng *rand.Rand) []Tuple {
	if rng == nil {
		rng = rand.New(rand.NewSource(1))
	}
	return core.SampleRandom(g, t, count, rng)
}

// RepresentativeTuples materializes up to count tuples chosen greedily to
// expose as many distinct attribute values as possible (future-work item 2).
func RepresentativeTuples(g *EntityGraph, t *PreviewTable, count int) []Tuple {
	return core.SampleRepresentative(g, t, count)
}

// MediatorInfo describes a multi-way (mediated) non-key attribute.
type MediatorInfo = core.MediatorInfo

// ExpandedValue is one value of a multi-way attribute with its one-hop
// linked entities per participant type.
type ExpandedValue = core.ExpandedValue

// Mediator reports whether a table's non-key attribute is multi-way
// (Appendix B): its target type mediates between the key and further
// entity types, as FILM PERFORMANCE does between FILM, FILM ACTOR and
// FILM CHARACTER.
func Mediator(s *Schema, key TypeID, t *PreviewTable, attrIndex int) (MediatorInfo, bool) {
	return core.Mediator(s, key, t.NonKeys[attrIndex].Inc)
}

// ExpandValues materializes the one-hop expansion of a tuple's values on a
// multi-way attribute.
func ExpandValues(g *EntityGraph, t *PreviewTable, tuple Tuple, attrIndex int) []ExpandedValue {
	return core.ExpandValues(g, t.Key, t.NonKeys[attrIndex].Inc, tuple, attrIndex)
}

// Render writes a preview as aligned text tables with sampled tuples, in
// the style of the paper's Fig. 2.
func Render(w io.Writer, g *EntityGraph, p *Preview, tuples int) error {
	return render.Preview(w, g, p, render.Options{Tuples: tuples})
}

// RenderTable writes one preview table as aligned text.
func RenderTable(w io.Writer, g *EntityGraph, t *PreviewTable, tuples int) error {
	return render.Table(w, g, t, render.Options{Tuples: tuples})
}

// RenderMarkdown writes one preview table as GitHub-flavored Markdown.
func RenderMarkdown(w io.Writer, g *EntityGraph, t *PreviewTable, tuples int) error {
	return render.MarkdownTable(w, g, t, render.Options{Tuples: tuples})
}

// RenderMarkdownPreview writes every table of a preview as Markdown,
// separated by blank lines.
func RenderMarkdownPreview(w io.Writer, g *EntityGraph, p *Preview, tuples int) error {
	return render.MarkdownPreview(w, g, p, render.Options{Tuples: tuples})
}

// JSON-friendly result documents: previews resolved to names instead of
// internal IDs, suitable for encoding/json. These are the response bodies
// served by the previewd HTTP API (internal/service).
type (
	// PreviewDoc is a JSON-friendly preview.
	PreviewDoc = render.PreviewDoc
	// TableDoc is a JSON-friendly preview table.
	TableDoc = render.TableDoc
	// ColumnDoc is a JSON-friendly non-key attribute.
	ColumnDoc = render.ColumnDoc
	// TupleDoc is a JSON-friendly materialized row.
	TupleDoc = render.TupleDoc
)

// PreviewDocument converts a preview into its JSON-friendly document,
// sampling up to tuples rows per table (0 = schema only). Sampling is
// deterministic: the same inputs produce the same document.
func PreviewDocument(g *EntityGraph, p *Preview, tuples int) PreviewDoc {
	return render.PreviewDocument(g, p, render.Options{Tuples: tuples})
}

// TableDocument converts one preview table into its JSON-friendly
// document.
func TableDocument(g *EntityGraph, t *PreviewTable, tuples int) TableDoc {
	return render.TableDocument(g, t, render.Options{Tuples: tuples})
}

// SchemaDOT writes a schema graph in Graphviz DOT (Fig. 3 style).
func SchemaDOT(w io.Writer, s *Schema) error { return render.SchemaDOT(w, s) }

// PreviewDOT writes the schema graph with a preview's star subgraphs
// highlighted.
func PreviewDOT(w io.Writer, s *Schema, p *Preview) error { return render.PreviewDOT(w, s, p) }

// WriteTriples serializes an entity graph in the line-oriented text format.
func WriteTriples(w io.Writer, g *EntityGraph) error { return triple.Marshal(w, g) }

// ReadTriples parses the line-oriented text format.
func ReadTriples(r io.Reader) (*EntityGraph, error) { return triple.Unmarshal(r) }

// NTriplesOptions configures ReadNTriples.
type NTriplesOptions = triple.NTriplesOptions

// ReadNTriples parses an N-Triples subset, mapping rdf:type statements to
// entity types. Set DropLiterals to discard literal-valued statements, as
// the paper's preprocessing did.
func ReadNTriples(r io.Reader, opts NTriplesOptions) (*EntityGraph, error) {
	return triple.ReadNTriples(r, opts)
}

// SaveSnapshot writes a compact binary snapshot of g to path.
func SaveSnapshot(path string, g *EntityGraph) error { return storage.SaveFile(path, g) }

// LoadSnapshot reads a binary snapshot from path.
func LoadSnapshot(path string) (*EntityGraph, error) { return storage.LoadFile(path) }
