module github.com/uta-db/previewtables

go 1.21
