package previewtables_test

import (
	"bytes"
	"encoding/json"
	"errors"
	"math"
	"path/filepath"
	"strings"
	"testing"

	previewtables "github.com/uta-db/previewtables"
)

// buildFig1 reconstructs the paper's Fig. 1 graph through the public API.
func buildFig1(t *testing.T) *previewtables.EntityGraph {
	t.Helper()
	var b previewtables.Builder
	film := b.Type("FILM")
	actor := b.Type("FILM ACTOR")
	director := b.Type("FILM DIRECTOR")
	producer := b.Type("FILM PRODUCER")
	genre := b.Type("FILM GENRE")
	award := b.Type("AWARD")

	rActor := b.RelType("Actor", actor, film)
	rDirector := b.RelType("Director", director, film)
	rGenres := b.RelType("Genres", film, genre)
	rProducer := b.RelType("Producer", producer, film)
	rExec := b.RelType("Executive Producer", producer, film)
	rAwardA := b.RelType("Award Winners", actor, award)
	rAwardD := b.RelType("Award Winners", director, award)

	mib := b.Entity("Men in Black")
	mib2 := b.Entity("Men in Black II")
	hancock := b.Entity("Hancock")
	irobot := b.Entity("I, Robot")
	will := b.Entity("Will Smith")
	tommy := b.Entity("Tommy Lee Jones")
	barry := b.Entity("Barry Sonnenfeld")
	peter := b.Entity("Peter Berg")
	alex := b.Entity("Alex Proyas")
	action := b.Entity("Action Film")
	scifi := b.Entity("Science Fiction")
	saturn := b.Entity("Saturn Award")
	academy := b.Entity("Academy Award")
	razzie := b.Entity("Razzie Award")

	for _, e := range [][2]previewtables.EntityID{{will, mib}, {will, mib2}, {will, hancock}, {will, irobot}, {tommy, mib}, {tommy, mib2}} {
		b.Edge(e[0], e[1], rActor)
	}
	b.Edge(barry, mib, rDirector)
	b.Edge(barry, mib2, rDirector)
	b.Edge(peter, hancock, rDirector)
	b.Edge(alex, irobot, rDirector)
	b.Edge(mib, action, rGenres)
	b.Edge(mib, scifi, rGenres)
	b.Edge(mib2, action, rGenres)
	b.Edge(mib2, scifi, rGenres)
	b.Edge(irobot, action, rGenres)
	b.Edge(will, hancock, rProducer)
	b.Edge(will, mib2, rProducer)
	b.Edge(will, irobot, rExec)
	b.Edge(will, saturn, rAwardA)
	b.Edge(tommy, academy, rAwardA)
	b.Edge(barry, razzie, rAwardD)

	g, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func TestDiscoverPublicAPI(t *testing.T) {
	g := buildFig1(t)
	p, err := previewtables.Discover(g, previewtables.Constraint{K: 2, N: 6})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(p.Score-84) > 1e-9 {
		t.Errorf("score = %v, want 84 (paper's Sec. 4 example)", p.Score)
	}
}

func TestDiscovererAlgorithmsAgree(t *testing.T) {
	g := buildFig1(t)
	d := previewtables.NewDiscoverer(g, previewtables.KeyCoverage, previewtables.NonKeyCoverage)
	c := previewtables.Constraint{K: 2, N: 6, Mode: previewtables.Diverse, D: 2}
	bf, err := d.BruteForce(c)
	if err != nil {
		t.Fatal(err)
	}
	ap, err := d.Apriori(c)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(bf.Score-ap.Score) > 1e-9 {
		t.Errorf("BF %v != Apriori %v", bf.Score, ap.Score)
	}
	if math.Abs(bf.Score-78) > 1e-9 {
		t.Errorf("diverse score = %v, want 78", bf.Score)
	}
}

func TestErrNoPreviewExposed(t *testing.T) {
	g := buildFig1(t)
	d := previewtables.NewDiscoverer(g, previewtables.KeyCoverage, previewtables.NonKeyCoverage)
	_, err := d.Apriori(previewtables.Constraint{K: 2, N: 4, Mode: previewtables.Diverse, D: 9})
	if !errors.Is(err, previewtables.ErrNoPreview) {
		t.Errorf("err = %v, want ErrNoPreview", err)
	}
}

func TestSuggestions(t *testing.T) {
	g := buildFig1(t)
	d := previewtables.NewDiscoverer(g, previewtables.KeyCoverage, previewtables.NonKeyCoverage)
	c := d.SuggestSize(12)
	if err := c.Validate(); err != nil {
		t.Errorf("suggested constraint invalid: %v", err)
	}
	sug := d.SuggestDistance()
	if sug.TightD < 1 || sug.DiverseD <= sug.TightD {
		t.Errorf("distance suggestion = %+v", sug)
	}
}

func TestRenderAndTuples(t *testing.T) {
	g := buildFig1(t)
	p, err := previewtables.Discover(g, previewtables.Constraint{K: 2, N: 6})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := previewtables.Render(&buf, g, &p, 3); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "FILM") {
		t.Error("rendered output missing FILM")
	}
	tuples := previewtables.SampleTuples(g, &p.Tables[0], 2, nil)
	if len(tuples) != 2 {
		t.Errorf("sampled %d tuples, want 2", len(tuples))
	}
	rep := previewtables.RepresentativeTuples(g, &p.Tables[0], 2)
	if len(rep) != 2 {
		t.Errorf("representative %d tuples, want 2", len(rep))
	}
	buf.Reset()
	if err := previewtables.RenderMarkdown(&buf, g, &p.Tables[0], 2); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "|") {
		t.Error("markdown output missing pipes")
	}
	buf.Reset()
	if err := previewtables.SchemaDOT(&buf, g.Schema()); err != nil {
		t.Fatal(err)
	}
	buf.Reset()
	if err := previewtables.PreviewDOT(&buf, g.Schema(), &p); err != nil {
		t.Fatal(err)
	}
}

func TestTriplesRoundTripPublic(t *testing.T) {
	g := buildFig1(t)
	var buf bytes.Buffer
	if err := previewtables.WriteTriples(&buf, g); err != nil {
		t.Fatal(err)
	}
	g2, err := previewtables.ReadTriples(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if g.Stats() != g2.Stats() {
		t.Errorf("round trip: %v vs %v", g.Stats(), g2.Stats())
	}
}

func TestNTriplesPublic(t *testing.T) {
	src := `<a> <http://www.w3.org/1999/02/22-rdf-syntax-ns#type> <T> .
<b> <http://www.w3.org/1999/02/22-rdf-syntax-ns#type> <T> .
<a> <rel> <b> .
<a> <height> "180" .`
	g, err := previewtables.ReadNTriples(strings.NewReader(src), previewtables.NTriplesOptions{DropLiterals: true})
	if err != nil {
		t.Fatal(err)
	}
	if g.NumEdges() != 1 {
		t.Errorf("edges = %d, want 1 (literal dropped)", g.NumEdges())
	}
}

func TestSnapshotPublic(t *testing.T) {
	g := buildFig1(t)
	path := filepath.Join(t.TempDir(), "g.egpt")
	if err := previewtables.SaveSnapshot(path, g); err != nil {
		t.Fatal(err)
	}
	g2, err := previewtables.LoadSnapshot(path)
	if err != nil {
		t.Fatal(err)
	}
	if g.Stats() != g2.Stats() {
		t.Errorf("snapshot round trip: %v vs %v", g.Stats(), g2.Stats())
	}
}

func TestAllOptimalPublic(t *testing.T) {
	g := buildFig1(t)
	d := previewtables.NewDiscoverer(g, previewtables.KeyCoverage, previewtables.NonKeyCoverage)
	all, err := d.AllOptimal(previewtables.Constraint{K: 2, N: 6})
	if err != nil {
		t.Fatal(err)
	}
	if len(all) != 2 {
		t.Fatalf("tied optima = %d, want 2 (the paper's Sec. 4 example ties)", len(all))
	}
	for _, p := range all {
		if math.Abs(p.Score-84) > 1e-9 {
			t.Errorf("tied score = %v, want 84", p.Score)
		}
	}
}

func TestBruteForceParallelPublic(t *testing.T) {
	g := buildFig1(t)
	d := previewtables.NewDiscoverer(g, previewtables.KeyCoverage, previewtables.NonKeyCoverage)
	c := previewtables.Constraint{K: 3, N: 8}
	seq, err := d.BruteForce(c)
	if err != nil {
		t.Fatal(err)
	}
	par, err := d.BruteForceParallel(c, 0)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(seq.Score-par.Score) > 1e-9 {
		t.Errorf("parallel %v != sequential %v", par.Score, seq.Score)
	}
}

func TestMediatorPublic(t *testing.T) {
	// AWARD as an attribute target is a mediator relative to FILM ACTOR:
	// awards also link to FILM DIRECTOR.
	g := buildFig1(t)
	d := previewtables.NewDiscoverer(g, previewtables.KeyCoverage, previewtables.NonKeyCoverage)
	p, err := d.Discover(previewtables.Constraint{K: 2, N: 6})
	if err != nil {
		t.Fatal(err)
	}
	s := g.Schema()
	// Just exercise the API across all chosen attributes; at least the
	// calls must be well formed and expansion must cover each value.
	for ti := range p.Tables {
		tb := &p.Tables[ti]
		tuples := previewtables.SampleTuples(g, tb, 2, nil)
		for ai := range tb.NonKeys {
			_, _ = previewtables.Mediator(s, tb.Key, tb, ai)
			for _, tu := range tuples {
				exp := previewtables.ExpandValues(g, tb, tu, ai)
				if len(exp) != len(tu.Values[ai]) {
					t.Fatalf("expansion dropped values: %d != %d", len(exp), len(tu.Values[ai]))
				}
			}
		}
	}
}

func TestPreviewDocumentPublic(t *testing.T) {
	g := buildFig1(t)
	p, err := previewtables.Discover(g, previewtables.Constraint{K: 2, N: 3})
	if err != nil {
		t.Fatal(err)
	}
	doc := previewtables.PreviewDocument(g, &p, 4)
	if doc.Score != p.Score || len(doc.Tables) != len(p.Tables) {
		t.Fatalf("doc %+v does not match preview (score %v, %d tables)", doc, p.Score, len(p.Tables))
	}
	raw, err := json.Marshal(doc)
	if err != nil {
		t.Fatal(err)
	}
	var back previewtables.PreviewDoc
	if err := json.Unmarshal(raw, &back); err != nil {
		t.Fatal(err)
	}
	if back.Score != doc.Score || len(back.Tables) != len(doc.Tables) {
		t.Fatalf("round trip changed the document: %+v vs %+v", back, doc)
	}
	td := previewtables.TableDocument(g, &p.Tables[0], 2)
	if td.Key != back.Tables[0].Key || len(td.Tuples) == 0 {
		t.Fatalf("table document: %+v", td)
	}
}
